"""Process-pool fan-out over many ``MinEnergy(G, D)`` instances.

:func:`solve_many` maps the model-appropriate solver over a list of
problems, either serially or across a pool of worker processes.  Every
instance is wrapped in per-instance error capture: a failing solve (an
infeasible deadline, a solver blow-up, a bad model) produces a
:class:`BatchResult` with ``ok=False`` and the error recorded instead of
killing the whole batch — exactly what a long parameter sweep needs.

Results come back in submission order and carry compact summaries (energy,
makespan, solver, wall-clock seconds) rather than full :class:`Solution`
objects, so a 10,000-instance sweep does not ship 10,000 schedules back
through the pipe.  Set ``keep_speeds=True`` to include the per-task speeds
when the assignments themselves are needed.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.problem import MinEnergyProblem


@dataclass
class BatchResult:
    """Outcome of one instance of a batch solve.

    ``ok`` distinguishes solved instances from captured failures; failed
    instances keep ``energy``/``makespan``/``solver`` as ``None`` and record
    the exception type and message instead.
    """

    index: int
    name: str
    ok: bool
    n_tasks: int = 0
    energy: float | None = None
    makespan: float | None = None
    solver: str | None = None
    optimal: bool | None = None
    lower_bound: float | None = None
    seconds: float = 0.0
    error: str | None = None
    error_type: str | None = None
    speeds: dict[str, float] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)


def _solve_one(item: tuple) -> BatchResult:
    """Worker body: solve one instance, capturing any failure."""
    index, problem, exact, validate, keep_speeds, solver_kwargs = item
    from repro.core.validation import check_solution
    from repro.solve import solve

    start = time.perf_counter()
    try:
        solution = solve(problem, exact=exact, **solver_kwargs)
        if validate:
            check_solution(solution)
        return BatchResult(
            index=index,
            name=problem.name,
            ok=True,
            n_tasks=problem.n_tasks,
            energy=float(solution.energy),
            makespan=float(solution.makespan),
            solver=solution.solver,
            optimal=bool(solution.optimal),
            lower_bound=(float(solution.lower_bound)
                         if solution.lower_bound is not None else None),
            seconds=time.perf_counter() - start,
            speeds=solution.speeds() if keep_speeds else None,
            metadata=dict(solution.metadata),
        )
    except Exception as exc:  # per-instance capture: the batch must survive
        return BatchResult(
            index=index,
            name=problem.name,
            ok=False,
            n_tasks=problem.n_tasks,
            seconds=time.perf_counter() - start,
            error=str(exc),
            error_type=type(exc).__name__,
        )


def solve_many(problems: Sequence[MinEnergyProblem] | Iterable[MinEnergyProblem], *,
               workers: int | None = None, chunk: int = 1,
               exact: bool | None = None, validate: bool = True,
               keep_speeds: bool = False,
               solver_kwargs: dict[str, Any] | None = None) -> list[BatchResult]:
    """Solve many instances, optionally fanning out over worker processes.

    Parameters
    ----------
    problems:
        The instances; each is dispatched through :func:`repro.solve.solve`
        so mixed energy models in one batch are fine.
    workers:
        ``None``, 0 or 1 solves serially in this process; otherwise a
        :class:`~concurrent.futures.ProcessPoolExecutor` with that many
        workers is used (instances must then be picklable, which every
        library graph/model is).
    chunk:
        Number of instances handed to a worker per dispatch (larger chunks
        amortise pickling for many small instances).
    exact:
        Forwarded to :func:`repro.solve.solve` (exact vs heuristic for the
        NP-complete models).
    validate:
        Re-check every returned solution with
        :func:`repro.core.validation.check_solution`; a validation failure
        is captured like any other per-instance error.
    keep_speeds:
        Include each solution's per-task speeds in its result (off by
        default to keep large sweeps lightweight).
    solver_kwargs:
        Extra keyword arguments forwarded to the model-specific solver.

    Returns
    -------
    list[BatchResult]
        One entry per instance, in input order, ``ok=False`` for captured
        failures.
    """
    items = [(i, p, exact, validate, keep_speeds, solver_kwargs or {})
             for i, p in enumerate(problems)]
    if workers is None or workers <= 1:
        return [_solve_one(item) for item in items]
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_solve_one, items, chunksize=chunk))


def failed(results: Iterable[BatchResult]) -> list[BatchResult]:
    """The subset of results whose solve raised (in input order)."""
    return [r for r in results if not r.ok]


def summarize(results: Sequence[BatchResult]) -> dict[str, Any]:
    """Aggregate counters for a batch: sizes, failures, total wall-clock."""
    n_failed = sum(1 for r in results if not r.ok)
    return {
        "n_instances": len(results),
        "n_solved": len(results) - n_failed,
        "n_failed": n_failed,
        "total_seconds": sum(r.seconds for r in results),
        "total_tasks": sum(r.n_tasks for r in results),
    }
