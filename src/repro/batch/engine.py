"""Process-pool fan-out over many ``MinEnergy(G, D)`` instances.

:func:`solve_many` maps the registry-dispatched solver over a list of
problems, either serially or across a pool of worker processes.  Every
instance is wrapped in per-instance error capture: a failing solve (an
infeasible deadline, a solver blow-up, a bad model) produces a
:class:`BatchResult` with ``ok=False`` and the error recorded instead of
killing the whole batch — exactly what a long parameter sweep needs.

The fan-out degrades gracefully rather than leaking the executor: a
``KeyboardInterrupt`` (or a worker process dying mid-batch) cancels the
pending futures, shuts the pool down without waiting, and returns the
results gathered so far with the unfinished instances recorded as failures
(``error_type`` ``"KeyboardInterrupt"`` / ``"BrokenProcessPool"``).

Passing a :class:`repro.cache.ResultCache` short-circuits instances whose
:meth:`~repro.core.problem.MinEnergyProblem.cache_key` is already stored:
hits are answered in the parent process (no pickling, no worker dispatch)
and misses populate the cache on the way back.  Every result's ``metadata``
carries its ``cache_hit`` flag and, when the caller provides them, the
per-instance RNG ``seed`` — so each sweep row is individually reproducible.

Results come back in submission order and carry compact summaries (energy,
makespan, solver, wall-clock seconds) rather than full :class:`Solution`
objects, so a 10,000-instance sweep does not ship 10,000 schedules back
through the pipe.  Set ``keep_speeds=True`` to include the per-task speeds
when the assignments themselves are needed.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.problem import MinEnergyProblem
from repro.utils.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ResultCache


@dataclass
class BatchResult:
    """Outcome of one instance of a batch solve.

    ``ok`` distinguishes solved instances from captured failures; failed
    instances keep ``energy``/``makespan``/``solver`` as ``None`` and record
    the exception type and message instead.  ``metadata`` always carries the
    ``cache_hit`` flag and, when the caller provided one, the instance's RNG
    ``seed``.
    """

    index: int
    name: str
    ok: bool
    n_tasks: int = 0
    energy: float | None = None
    makespan: float | None = None
    solver: str | None = None
    optimal: bool | None = None
    lower_bound: float | None = None
    seconds: float = 0.0
    error: str | None = None
    error_type: str | None = None
    speeds: dict[str, float] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def cache_hit(self) -> bool:
        """Whether this result was served from the result cache."""
        return bool(self.metadata.get("cache_hit"))

    @property
    def build_seconds(self) -> float | None:
        """Model-materialisation time the solver reported (modeling layer)."""
        return self.metadata.get("build_seconds")

    @property
    def solve_seconds(self) -> float | None:
        """Backend solve time the solver reported (modeling layer)."""
        return self.metadata.get("solve_seconds")


@dataclass(frozen=True)
class _WorkItem:
    """One instance plus everything the worker needs to solve it."""

    index: int
    problem: MinEnergyProblem
    method: str | None
    exact: bool | None
    validate: bool
    keep_speeds: bool
    options: dict[str, Any]
    seed: int | None
    want_envelope: bool


def _solve_one(item: _WorkItem) -> tuple[BatchResult, dict | None]:
    """Worker body: solve one instance, capturing any failure.

    Returns the summary row plus, when ``want_envelope`` is set (cache
    wiring), the solution's serialisable envelope so the parent process can
    populate the cache.
    """
    from repro.core.validation import check_solution
    from repro.solve import solve

    problem = item.problem
    start = time.perf_counter()
    try:
        solution = solve(problem, method=item.method, exact=item.exact,
                         options=item.options)
        if item.validate:
            check_solution(solution)
        envelope = None
        if item.want_envelope:
            from repro.cache import solution_envelope

            envelope = solution_envelope(solution)
        metadata = dict(solution.metadata)
        metadata["cache_hit"] = False
        if item.seed is not None:
            metadata["seed"] = item.seed
        return BatchResult(
            index=item.index,
            name=problem.name,
            ok=True,
            n_tasks=problem.n_tasks,
            energy=float(solution.energy),
            makespan=float(solution.makespan),
            solver=solution.solver,
            optimal=bool(solution.optimal),
            lower_bound=(float(solution.lower_bound)
                         if solution.lower_bound is not None else None),
            seconds=time.perf_counter() - start,
            speeds=solution.speeds() if item.keep_speeds else None,
            metadata=metadata,
        ), envelope
    except Exception as exc:  # per-instance capture: the batch must survive
        metadata = {"cache_hit": False}
        if item.seed is not None:
            metadata["seed"] = item.seed
        return BatchResult(
            index=item.index,
            name=problem.name,
            ok=False,
            n_tasks=problem.n_tasks,
            seconds=time.perf_counter() - start,
            error=str(exc),
            error_type=type(exc).__name__,
            metadata=metadata,
        ), None


def _solve_chunk(items: list[_WorkItem]) -> list[tuple[BatchResult, dict | None]]:
    """Worker body for a chunk of instances (amortises pickling)."""
    return [_solve_one(item) for item in items]


def _envelope_speeds(envelope: dict) -> dict[str, float] | None:
    """Per-task (average) speeds of a cached envelope, whatever its kind.

    Constant-speed envelopes store them directly; hopping envelopes store
    ``(speed, duration)`` segments, from which the work-weighted average is
    recovered — mirroring :meth:`repro.core.solution.Solution.speeds` so a
    warm ``keep_speeds=True`` row carries the same data as a cold one.
    """
    if "speeds" in envelope:
        return dict(envelope["speeds"])
    if "segments" in envelope:
        out: dict[str, float] = {}
        for name, segs in envelope["segments"].items():
            total_time = sum(t for _s, t in segs)
            total_work = sum(s * t for s, t in segs)
            out[name] = total_work / total_time if total_time > 0 else float("inf")
        return out
    return None


def _result_from_envelope(item: _WorkItem, envelope: dict,
                          seconds: float) -> BatchResult:
    """Summary row for a cache hit (no solver ran)."""
    metadata = dict(envelope.get("metadata") or {})
    metadata["cache_hit"] = True
    if item.seed is not None:
        metadata["seed"] = item.seed
    return BatchResult(
        index=item.index,
        name=item.problem.name,
        ok=True,
        n_tasks=item.problem.n_tasks,
        energy=envelope.get("energy"),
        makespan=envelope.get("makespan"),
        solver=envelope.get("solver"),
        optimal=envelope.get("optimal"),
        lower_bound=envelope.get("lower_bound"),
        seconds=seconds,
        speeds=_envelope_speeds(envelope) if item.keep_speeds else None,
        metadata=metadata,
    )


def _interrupted_result(item: _WorkItem, error_type: str, message: str) -> BatchResult:
    metadata: dict[str, Any] = {"cache_hit": False}
    if item.seed is not None:
        metadata["seed"] = item.seed
    return BatchResult(
        index=item.index, name=item.problem.name, ok=False,
        n_tasks=item.problem.n_tasks, error=message, error_type=error_type,
        metadata=metadata,
    )


def solve_many(problems: Sequence[MinEnergyProblem] | Iterable[MinEnergyProblem], *,
               workers: int | None = None, chunk: int = 1,
               method: str | None = None,
               exact: bool | None = None, validate: bool = True,
               keep_speeds: bool = False,
               options: dict[str, Any] | None = None,
               solver_kwargs: dict[str, Any] | None = None,
               cache: "ResultCache | None" = None,
               seeds: Sequence[int | None] | None = None) -> list[BatchResult]:
    """Solve many instances, optionally fanning out over worker processes.

    Parameters
    ----------
    problems:
        The instances; each is dispatched through :func:`repro.solve.solve`
        so mixed energy models in one batch are fine.
    workers:
        ``None``, 0 or 1 solves serially in this process; otherwise a
        :class:`~concurrent.futures.ProcessPoolExecutor` with that many
        workers is used (instances must then be picklable, which every
        library graph/model is).
    chunk:
        Number of instances handed to a worker per dispatch (larger chunks
        amortise pickling for many small instances).
    method:
        Registered solver method forwarded to :func:`repro.solve.solve`
        (``None`` = each model's default).
    exact:
        Forwarded to :func:`repro.solve.solve` (exact vs heuristic for the
        NP-complete models).
    validate:
        Re-check every returned solution with
        :func:`repro.core.validation.check_solution`; a validation failure
        is captured like any other per-instance error.
    keep_speeds:
        Include each solution's per-task speeds in its result (off by
        default to keep large sweeps lightweight).
    options:
        Solver options validated against the chosen backend's schema.
        ``solver_kwargs`` is the deprecated spelling of the same mapping and
        is merged into ``options``.
    cache:
        Optional :class:`repro.cache.ResultCache`.  Instances whose cache
        key is stored are answered in the parent process; misses are solved
        and their envelopes inserted, so a re-run of the same batch is
        near-free.
    seeds:
        Optional per-instance RNG seeds (aligned with ``problems``); each is
        recorded in its result's ``metadata["seed"]`` so rows in dumped
        sweep tables are individually reproducible.

    Returns
    -------
    list[BatchResult]
        One entry per instance, in input order, ``ok=False`` for captured
        failures (including instances cancelled by an interrupt or a worker
        death — see the module docstring).
    """
    merged = dict(solver_kwargs or {})
    merged.update(options or {})
    problem_list = list(problems)
    if seeds is not None and len(seeds) != len(problem_list):
        raise InvalidParameterError(
            f"seeds must align with problems: got {len(seeds)} seeds for "
            f"{len(problem_list)} problems"
        )
    items = [
        _WorkItem(index=i, problem=p, method=method, exact=exact,
                  validate=validate, keep_speeds=keep_speeds, options=merged,
                  seed=None if seeds is None else seeds[i],
                  want_envelope=cache is not None)
        for i, p in enumerate(problem_list)
    ]

    results: list[BatchResult | None] = [None] * len(items)

    # --- cache pre-resolution (parent process; hits never reach the pool) --
    pending: list[_WorkItem] = items
    keys: dict[int, str] = {}
    if cache is not None:
        from repro.solve import cache_key_for

        pending = []
        for item in items:
            lookup_start = time.perf_counter()
            try:
                key = cache_key_for(item.problem, method,
                                    options=merged, exact=exact)
            except Exception:
                # dispatch/validation errors must surface as per-instance
                # failures, not crash the pre-pass: solve it "for real"
                pending.append(item)
                continue
            keys[item.index] = key
            envelope = cache.get(key)
            if envelope is not None:
                results[item.index] = _result_from_envelope(
                    item, envelope, time.perf_counter() - lookup_start)
            else:
                pending.append(item)

    def finish(item_result: tuple[BatchResult, dict | None]) -> None:
        result, envelope = item_result
        results[result.index] = result
        if cache is not None and envelope is not None and result.index in keys:
            cache.put(keys[result.index], envelope)

    if workers is None or workers <= 1:
        try:
            for item in pending:
                finish(_solve_one(item))
        except KeyboardInterrupt as exc:
            for item in pending:
                if results[item.index] is None:
                    results[item.index] = _interrupted_result(
                        item, "KeyboardInterrupt", str(exc) or "interrupted")
        return results  # type: ignore[return-value]  # every slot is filled

    if chunk < 1:
        raise InvalidParameterError(f"chunk must be >= 1, got {chunk}")

    chunks = [pending[i:i + chunk] for i in range(0, len(pending), chunk)]
    pool = ProcessPoolExecutor(max_workers=workers)
    future_items: dict[Future, list[_WorkItem]] = {}
    try:
        try:
            for chunk_items in chunks:
                future_items[pool.submit(_solve_chunk, chunk_items)] = chunk_items
            not_done = set(future_items)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    for item_result in future.result():
                        finish(item_result)
        except (KeyboardInterrupt, BrokenProcessPool) as exc:
            error_type = type(exc).__name__
            message = str(exc) or ("worker pool interrupted"
                                   if error_type == "KeyboardInterrupt"
                                   else "a worker process died")
            for future, chunk_items in future_items.items():
                future.cancel()
                if future.done() and not future.cancelled():
                    try:
                        for item_result in future.result(timeout=0):
                            finish(item_result)
                        continue
                    except Exception:
                        pass  # the broken future itself: fall through to record
                for item in chunk_items:
                    if results[item.index] is None:
                        results[item.index] = _interrupted_result(
                            item, error_type, message)
    finally:
        # always reached with every future done or cancelled; also covers
        # unexpected exceptions (a cache store failing mid-finish, ...) so
        # live worker processes never leak behind a propagating error
        pool.shutdown(wait=False, cancel_futures=True)
    return results  # type: ignore[return-value]  # every slot is filled


def failed(results: Iterable[BatchResult]) -> list[BatchResult]:
    """The subset of results whose solve raised (in input order)."""
    return [r for r in results if not r.ok]


def summarize(results: Sequence[BatchResult]) -> dict[str, Any]:
    """Aggregate counters for a batch: sizes, failures, cache hits, wall-clock."""
    n_failed = sum(1 for r in results if not r.ok)
    return {
        "n_instances": len(results),
        "n_solved": len(results) - n_failed,
        "n_failed": n_failed,
        "cache_hits": sum(1 for r in results if r.cache_hit),
        "total_seconds": sum(r.seconds for r in results),
        "total_tasks": sum(r.n_tasks for r in results),
    }
