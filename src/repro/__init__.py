"""repro — Reclaiming the Energy of a Schedule: Models and Algorithms.

A reproduction of Aupy, Benoit, Dufossé and Robert, *Brief Announcement:
Reclaiming the Energy of a Schedule, Models and Algorithms* (SPAA 2011).

The library models the ``MinEnergy(G, D)`` problem — re-choosing the
execution speed of every task of an already-mapped task graph so as to
minimise the dynamic energy while meeting a deadline — under the paper's
four energy models (Continuous, Discrete, Vdd-Hopping, Incremental), and
implements the algorithms, bounds and approximation guarantees of the
paper's theorems, together with the task-graph, mapping, simulation and
experiment infrastructure needed to evaluate them.

Quickstart
----------
>>> from repro import generators, MinEnergyProblem, ContinuousModel, solve
>>> graph = generators.fork(4, seed=0)
>>> problem = MinEnergyProblem(graph=graph, deadline=10.0, model=ContinuousModel())
>>> solution = solve(problem)
>>> round(solution.energy, 3) > 0
True
"""

from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    EnergyModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.power import CUBIC, PowerLaw
from repro.core.problem import MinEnergyProblem
from repro.core.solution import (
    HoppingAssignment,
    Schedule,
    Solution,
    SpeedAssignment,
    compute_schedule,
)
from repro.core.validation import check_solution, is_feasible_assignment
from repro.graphs import generators
from repro.graphs.taskgraph import Task, TaskGraph
from repro.mapping.execution_graph import ExecutionGraph
from repro.mapping.list_scheduling import (
    list_schedule,
    load_balance_mapping,
    round_robin_mapping,
    single_processor_mapping,
)
from repro.continuous.solve import solve_continuous
from repro.continuous.bounds import continuous_lower_bound
from repro.vdd.solve import solve_vdd_hopping
from repro.discrete.solve import solve_discrete
from repro.incremental.approx import solve_incremental_approx, solve_incremental_exact
from repro.baselines.naive import solve_no_reclaim, solve_uniform_scaling
from repro.simulation.engine import simulate, simulate_solution
from repro.solve import solve, solver_methods
from repro.cache import ResultCache, disk_cache, memory_cache
from repro.batch import ShardSpec, merge_shard_dumps, solve_many, sweep
from repro.service import JobHandle, JobStatus, SolverService
from repro.api import (
    DiskTransport,
    HTTPTransport,
    JobRecord,
    LocalTransport,
    SolverClient,
    SweepRequest,
)
from repro.utils.errors import (
    InfeasibleProblemError,
    InvalidGraphError,
    InvalidModelError,
    InvalidOptionError,
    InvalidSolutionError,
    ReproError,
    SolverError,
    UnknownOptionError,
    UnknownSolverError,
)

__version__ = "1.0.0"

__all__ = [
    # models & power
    "EnergyModel",
    "ContinuousModel",
    "DiscreteModel",
    "VddHoppingModel",
    "IncrementalModel",
    "PowerLaw",
    "CUBIC",
    # problem & solutions
    "MinEnergyProblem",
    "SpeedAssignment",
    "HoppingAssignment",
    "Schedule",
    "Solution",
    "compute_schedule",
    "check_solution",
    "is_feasible_assignment",
    # graphs & mapping
    "Task",
    "TaskGraph",
    "ExecutionGraph",
    "generators",
    "list_schedule",
    "round_robin_mapping",
    "load_balance_mapping",
    "single_processor_mapping",
    # solvers
    "solve",
    "solver_methods",
    "solve_continuous",
    "continuous_lower_bound",
    "solve_vdd_hopping",
    "solve_discrete",
    "solve_incremental_approx",
    "solve_incremental_exact",
    "solve_no_reclaim",
    "solve_uniform_scaling",
    # batch / cache / service
    "solve_many",
    "sweep",
    "ShardSpec",
    "merge_shard_dumps",
    "ResultCache",
    "memory_cache",
    "disk_cache",
    "SolverService",
    "JobHandle",
    "JobStatus",
    # transport-agnostic client API
    "SolverClient",
    "SweepRequest",
    "JobRecord",
    "LocalTransport",
    "DiskTransport",
    "HTTPTransport",
    # simulation
    "simulate",
    "simulate_solution",
    # errors
    "ReproError",
    "InvalidGraphError",
    "InvalidModelError",
    "InfeasibleProblemError",
    "InvalidSolutionError",
    "SolverError",
    "UnknownSolverError",
    "InvalidOptionError",
    "UnknownOptionError",
    "__version__",
]
