"""HTTP solver service: ``repro serve`` and its embeddable server class.

The server is a thin JSON front (stdlib ``http.server``, no dependencies)
over the transports of :mod:`repro.api` — by default the durable
:class:`~repro.api.client.DiskTransport`, so submitted jobs are recorded
under the server's ``--jobs-dir`` and clients can detach and re-attach
across their own restarts.

From the command line::

    python -m repro serve --port 8731 --jobs-dir .repro-jobs --workers 4

and from a second machine::

    python -m repro submit --url http://solver:8731 --classes chain --sizes 64
    python -m repro attach <job-id> --url http://solver:8731
"""

from repro.server.http import SolverHTTPServer, serve

__all__ = ["SolverHTTPServer", "serve"]
