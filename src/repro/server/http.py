"""The ``repro serve`` HTTP solver service (stdlib ``http.server`` only).

A thin JSON front over any :class:`repro.api.client.Transport` — by
default a :class:`~repro.api.client.DiskTransport`, so every job the
server runs is durably recorded and clients can detach, die and re-attach
at will.  Routes (all under :data:`repro.api.protocol.PROTOCOL_PREFIX`):

=======  ==========================  ===========================================
Method   Path                        Body / response
=======  ==========================  ===========================================
POST     ``/v1/solve``               :class:`SolveRequest` wire -> solve response
POST     ``/v1/solve_batch``         request batch -> one packed row frame
GET      ``/v1/batch_stats``         micro-batcher coalescing statistics
POST     ``/v1/jobs``                :class:`SweepRequest` wire -> job record
GET      ``/v1/jobs``                ``{"jobs": [record, ...]}``
GET      ``/v1/jobs/<id>``           job record
GET      ``/v1/jobs/<id>/results``   result-table wire (409 until terminal)
POST     ``/v1/jobs/<id>/cancel``    job record after the cancel
GET      ``/v1/jobs/<id>/events``    chunked ndjson stream of progress events
GET      ``/v1/healthz``             liveness probe (never requires auth)
GET      ``/v1/queue``               queue depth / lease health counters
=======  ==========================  ===========================================

``/v1/solve`` is the synchronous fast path: no job record, no polling —
the request is solved inline (coalesced with concurrent requests by the
server's :class:`repro.service.MicroBatcher`) and answered in the same
round-trip with a :class:`~repro.api.protocol.SolveResponse` body, 200
even for a captured solve failure (``ok=false`` + typed ``error_type``).
``/v1/solve_batch`` takes ``{"requests": [...], "keep_speeds": bool}``
and answers with one compact binary row frame
(:mod:`repro.api.rowcodec`): all numeric columns of all rows in a single
base64 float64 matrix, decoded client-side back into response rows.

Failures are **typed error bodies** (:func:`repro.api.protocol.error_to_wire`),
mapped onto status codes: unknown job -> 404, malformed payload or
schema-version mismatch -> 400, premature results -> 409, missing or wrong
bearer token -> 401, anything else -> 500 — so the HTTP transport
re-raises the exact library exception the server hit.

Auth is optional bearer-token: start the server with ``--token`` (or
``REPRO_TOKEN``) and every route except ``/v1/healthz`` demands
``Authorization: Bearer <token>``, rejecting everything else with a typed
401 :class:`~repro.utils.errors.AuthError` body.  ``/v1/healthz`` stays
open so load balancers and autoscalers can probe without credentials;
``/v1/queue`` (their sizing signal) is authenticated like the job routes
because it leaks worker identities.

The event stream is genuinely incremental: HTTP/1.1 chunked transfer
encoding, one JSON object per line, flushed as the job progresses, closed
after the terminal event.
"""

from __future__ import annotations

import contextlib
import hmac
import json
import os
import re
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator

import numpy as np

from repro.api.client import (
    DiskTransport,
    Transport,
    backoff_intervals,
    execute_solve,
    execute_solve_batch,
)
from repro.api.protocol import (
    PROTOCOL_PREFIX,
    SCHEMA_VERSION,
    ProgressEvent,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    check_schema_version,
    error_to_wire,
    table_to_wire,
)
from repro.api.rowcodec import encode_rows
from repro.reliability.policy import DEADLINE_HEADER, Deadline
from repro.service.batcher import DEFAULT_MAX_BATCH, DEFAULT_WINDOW_MS
from repro.utils.errors import (
    AuthError,
    DeadlineExceededError,
    InvalidParameterError,
    JobStateError,
    OverloadedError,
    ReproError,
    SchemaVersionError,
    ServerShutdownError,
    TransientTransportError,
    TransportError,
    UnknownJobError,
)

_JOB_ROUTE = re.compile(
    rf"^{re.escape(PROTOCOL_PREFIX)}/jobs/([^/]+)(?:/(results|cancel|events))?$")

#: HTTP status for each typed failure (anything else is a 500).  Order
#: matters: subclasses before their bases (the overload/drain/transient
#: errors all derive from TransportError, which maps to a plain 400).
_STATUS_OF = (
    (AuthError, 401),
    (UnknownJobError, 404),
    (SchemaVersionError, 400),
    (JobStateError, 409),
    (OverloadedError, 503),
    (ServerShutdownError, 503),
    (TransientTransportError, 503),
    (DeadlineExceededError, 504),
    (TransportError, 400),
    (ReproError, 400),
)


def _status_for(exc: BaseException) -> int:
    for cls, code in _STATUS_OF:
        if isinstance(exc, cls):
            return code
    return 500


#: Defaults of the admission controller (overridable per server and via
#: ``repro serve --max-inflight/--max-queue``).
DEFAULT_MAX_INFLIGHT = 8
DEFAULT_MAX_QUEUE = 32
DEFAULT_QUEUE_TIMEOUT = 2.0

#: ``Retry-After`` seconds suggested to shed clients.
DEFAULT_RETRY_AFTER = 0.25


class AdmissionController:
    """Bounded admission for the work routes: load shedding, not thrashing.

    At most ``max_inflight`` requests execute concurrently; up to
    ``max_queue`` more may wait ``queue_timeout`` seconds for a slot.
    Everything beyond that — and every queued request whose wait times
    out — is shed with a typed
    :class:`~repro.utils.errors.OverloadedError` (a 503 with a
    ``Retry-After`` header the client's retry policy honours as a
    backoff floor), so an overloaded server answers in microseconds
    instead of accepting unbounded work until it thrashes.
    """

    def __init__(self, *, max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 queue_timeout: float = DEFAULT_QUEUE_TIMEOUT,
                 retry_after: float = DEFAULT_RETRY_AFTER) -> None:
        if max_inflight < 1:
            raise InvalidParameterError(
                f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise InvalidParameterError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self.retry_after = retry_after
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._waiting = 0
        self._inflight = 0
        self._admitted = 0
        self._shed = 0

    def _shed_error(self, what: str, why: str) -> OverloadedError:
        with self._lock:
            self._shed += 1
            inflight, waiting = self._inflight, self._waiting
        return OverloadedError(
            f"server overloaded: {what} shed ({why}; "
            f"{inflight} in flight, {waiting} queued)",
            retry_after=self.retry_after)

    @contextlib.contextmanager
    def admit(self, what: str) -> Iterator[None]:
        """Hold one execution slot for the duration of the block."""
        # a free slot admits immediately and never counts as queued, so
        # max_queue=0 means "no waiting" rather than "no admission"
        acquired = self._slots.acquire(blocking=False)
        if not acquired:
            with self._lock:
                queue_full = self._waiting >= self.max_queue
                if not queue_full:
                    self._waiting += 1
            if queue_full:
                raise self._shed_error(what, "admission queue full")
            acquired = self._slots.acquire(timeout=self.queue_timeout)
            with self._lock:
                self._waiting -= 1
        if not acquired:
            raise self._shed_error(what, f"no slot within "
                                         f"{self.queue_timeout}s")
        with self._lock:
            self._inflight += 1
            self._admitted += 1
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
            self._slots.release()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "inflight": self._inflight,
                "queued": self._waiting,
                "admitted": self._admitted,
                "shed": self._shed,
            }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-solver/1"
    # buffer the response so status line + headers + body leave as one TCP
    # segment, and disable Nagle: an unbuffered wfile writes each header as
    # its own packet, which interacts with delayed ACKs into ~40ms stalls
    # on the latency-sensitive /v1/solve round-trip (handle_one_request
    # flushes after every response, and the chunked event stream flushes
    # explicitly, so buffering never delays a reply)
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    # the owning SolverHTTPServer sets these on the server object
    @property
    def transport(self) -> Transport:
        return self.server.transport  # type: ignore[attr-defined]

    @property
    def solver(self):
        """The shared solve-path service (micro-batcher + vector core)."""
        return self.server.solver  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            sys.stderr.write("repro-serve: " + format % args + "\n")

    def _send_json(self, payload: dict, *, status: int = 200,
                   extra_headers: "dict[str, str] | None" = None) -> None:
        body = json.dumps(payload, default=repr).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, exc: BaseException) -> None:
        headers = None
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            headers = {"Retry-After": f"{float(retry_after):g}"}
        self._send_json(error_to_wire(exc), status=_status_for(exc),
                        extra_headers=headers)

    def _deadline(self) -> "Deadline | None":
        """The request's propagated deadline budget, if the client sent
        one (a malformed header is ignored, never a 400)."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        return Deadline.from_header(raw)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise TransportError("malformed request: empty body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise TransportError(
                f"malformed request: body is not JSON ({exc})") from exc

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._route("POST")

    def _check_auth(self) -> None:
        """Demand the configured bearer token (no-op on an open server)."""
        token = getattr(self.server, "token", None)
        if not token:
            return
        header = str(self.headers.get("Authorization") or "")
        offered = header[len("Bearer "):] if header.startswith("Bearer ") \
            else ""
        if not offered or not hmac.compare_digest(offered, token):
            raise AuthError(
                "this server requires a bearer token; send "
                "'Authorization: Bearer <token>' (repro --token / "
                "REPRO_TOKEN)"
            )

    @property
    def _admission(self) -> AdmissionController:
        return self.server.admission  # type: ignore[attr-defined]

    @property
    def _draining(self) -> threading.Event:
        return self.server.draining  # type: ignore[attr-defined]

    def _refuse_if_draining(self, what: str) -> None:
        if self._draining.is_set():
            raise ServerShutdownError(
                f"server is draining: {what} refused; retry against the "
                "restarted server", retry_after=1.0)

    def _route(self, method: str) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == f"{PROTOCOL_PREFIX}/healthz" and method == "GET":
                return self._healthz()  # liveness probes skip auth
            self._check_auth()
            # the work routes (everything that executes solves or creates
            # records) sit behind bounded admission and refuse new work
            # during a drain; the cheap read routes always answer
            if path == f"{PROTOCOL_PREFIX}/solve" and method == "POST":
                self._refuse_if_draining("solve")
                with self._admission.admit("POST /solve"):
                    return self._solve()
            if path == f"{PROTOCOL_PREFIX}/solve_batch" and method == "POST":
                self._refuse_if_draining("batch solve")
                with self._admission.admit("POST /solve_batch"):
                    return self._solve_batch()
            if path == f"{PROTOCOL_PREFIX}/batch_stats" and method == "GET":
                return self._batch_stats()
            if path == f"{PROTOCOL_PREFIX}/queue" and method == "GET":
                return self._queue()
            if path == f"{PROTOCOL_PREFIX}/jobs":
                if method == "POST":
                    self._refuse_if_draining("job submission")
                    with self._admission.admit("POST /jobs"):
                        return self._submit()
                return self._list_jobs()
            match = _JOB_ROUTE.match(path)
            if match:
                job_id, verb = match.group(1), match.group(2)
                if verb is None and method == "GET":
                    return self._status(job_id)
                if verb == "results" and method == "GET":
                    return self._results(job_id)
                if verb == "cancel" and method == "POST":
                    return self._cancel(job_id)
                if verb == "events" and method == "GET":
                    return self._events(job_id)
            raise UnknownJobError(
                f"no route {method} {path}; see {PROTOCOL_PREFIX}/jobs")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:
            try:
                self._send_error_body(exc)
            except BrokenPipeError:  # pragma: no cover - client went away
                pass

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #
    def _healthz(self) -> None:
        draining = self._draining.is_set()
        self._send_json({
            "schema_version": SCHEMA_VERSION,
            "status": "draining" if draining else "ok",
            "protocol": PROTOCOL_PREFIX,
            "auth": bool(getattr(self.server, "token", None)),
            "draining": draining,
            "admission": self._admission.stats(),
        })

    def _queue(self) -> None:
        store = getattr(self.transport, "store", None)
        if store is None:
            raise TransportError(
                "queue statistics need a disk-backed server (this one runs "
                "an in-process transport with no job store)"
            )
        from repro.fleet.ops import queue_stats

        stale_after = getattr(self.transport, "stale_after", None)
        stats = (queue_stats(store) if stale_after is None
                 else queue_stats(store, stale_after=stale_after))
        self._send_json({"schema_version": SCHEMA_VERSION, **stats})

    def _solve(self) -> None:
        """The synchronous fast path: solve inline, answer in-band.

        Coalesces with concurrent requests through the solver service's
        micro-batcher; a captured failure is a 200 with ``ok=false`` (the
        client re-raises it typed), only a malformed payload is a 4xx.
        """
        deadline = self._deadline()
        request = SolveRequest.from_wire(self._read_body())
        if deadline is not None:
            deadline.require("solve")  # arrived with a spent budget: 504
        self._send_json(
            execute_solve(self.solver, request, deadline=deadline).to_wire())

    def _solve_batch(self) -> None:
        """One request, one batch tick, one packed binary row frame."""
        deadline = self._deadline()
        if deadline is not None:
            deadline.require("batch solve")
        body = self._read_body()
        if not isinstance(body, dict) or \
                not isinstance(body.get("requests"), list):
            raise TransportError(
                "malformed batch solve: expected an object with a "
                "requests array")
        check_schema_version(body, what="batch solve request")
        keep_speeds = bool(body.get("keep_speeds", False))
        rows: list[SolveResponse | None] = [None] * len(body["requests"])
        parsed: list[tuple[int, SolveRequest]] = []
        for i, payload in enumerate(body["requests"]):
            try:
                parsed.append((i, SolveRequest.from_wire(payload)))
            except ReproError as exc:  # a bad instance is a row, not a 4xx
                name = str(payload.get("name", "")) \
                    if isinstance(payload, dict) else ""
                rows[i] = SolveResponse.from_failure(exc, name=name)
        responses = execute_solve_batch(
            self.solver, [request for _i, request in parsed],
            keep_speeds=keep_speeds)
        order_of: dict[int, list[str]] = {}
        for (i, request), response in zip(parsed, responses):
            rows[i] = response
            order_of[i] = list((request.graph.get("tasks") or {}).keys())
        speeds_vectors = None
        if any(row.speeds for row in rows):
            # re-emit each speed map as a vector in the request's own task
            # order, which the client reattaches without names travelling
            speeds_vectors = []
            for i, row in enumerate(rows):
                order = order_of.get(i)
                if row.speeds and order \
                        and all(t in row.speeds for t in order):
                    speeds_vectors.append(np.array(
                        [row.speeds[t] for t in order], dtype="<f8"))
                else:
                    speeds_vectors.append(None)
        self._send_json(encode_rows(rows, speeds_vectors=speeds_vectors))

    def _batch_stats(self) -> None:
        self._send_json({"schema_version": SCHEMA_VERSION,
                         **self.solver.batch_stats()})

    def _submit(self) -> None:
        request = SweepRequest.from_wire(self._read_body())
        record = self.transport.submit(request)
        self._send_json(record.to_wire())

    def _list_jobs(self) -> None:
        records, skipped = self.transport.scan_jobs()
        self._send_json({"schema_version": SCHEMA_VERSION,
                         "jobs": [r.to_wire() for r in records],
                         "skipped": [list(pair) for pair in skipped]})

    def _status(self, job_id: str) -> None:
        self._send_json(self.transport.status(job_id).to_wire())

    def _results(self, job_id: str) -> None:
        record = self.transport.status(job_id)
        if not record.terminal:
            raise JobStateError(
                f"job {job_id} is still {record.status} "
                f"({record.done}/{record.total} done); poll "
                f"{PROTOCOL_PREFIX}/jobs/{job_id} until it is terminal"
            )
        table = self.transport.fetch_results(job_id)
        self._send_json(table_to_wire(table))

    def _cancel(self, job_id: str) -> None:
        self._send_json(self.transport.cancel(job_id).to_wire())

    def _events(self, job_id: str) -> None:
        self.transport.status(job_id)  # 404 before committing to a stream
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        # from here on the headers are gone: a failure mid-stream must be
        # delivered as an in-band error *line* (the client transport
        # re-raises it), never as a second HTTP response into the body
        try:
            try:
                for event in self._event_ticks(job_id):
                    self._write_chunk(
                        json.dumps(event.to_wire()).encode("utf-8") + b"\n")
            except BrokenPipeError:
                raise
            except Exception as exc:
                self._write_chunk(
                    json.dumps(error_to_wire(exc)).encode("utf-8") + b"\n")
            self._write_chunk(b"")  # terminating zero-length chunk
        except BrokenPipeError:  # pragma: no cover - client went away
            self.close_connection = True

    def _event_ticks(self, job_id: str) -> "Iterator[ProgressEvent]":
        """The stream's event source: status polling that a drain can
        interrupt *immediately*.

        The generic ``Transport.events`` backoff sleeps up to two seconds
        between polls; a draining server cannot afford to sit in that
        sleep with the socket open.  This loop waits on the drain event
        instead of sleeping, so SIGTERM turns into an in-band
        :class:`~repro.utils.errors.ServerShutdownError` line within one
        tick, which the client re-raises typed — never a dead socket.
        """
        draining = self._draining
        seq = 0
        last: tuple | None = None
        for interval in backoff_intervals(0.05, maximum=0.5):
            if draining.is_set():
                raise ServerShutdownError(
                    f"server is draining: event stream for job {job_id} "
                    "terminated; re-attach to the restarted server",
                    retry_after=1.0)
            record = self.transport.status(job_id)
            key = (record.status, record.done, record.failed)
            if key != last:
                last = key
                event = ProgressEvent.from_record(record, seq)
                seq += 1
                yield event
                if event.terminal:
                    return
            elif record.terminal:  # pragma: no cover - raced to terminal
                return
            if draining.wait(timeout=interval):
                continue  # woke early: deliver the drain line now

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        if data:
            self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()


class SolverHTTPServer:
    """A running solver service bound to ``host:port``.

    Wraps a :class:`ThreadingHTTPServer` (one thread per request, so a
    streaming ``/events`` consumer never blocks a ``/jobs`` poll) around
    any transport.  Usable programmatically (tests bind port 0) or via
    ``repro serve``.
    """

    def __init__(self, transport: Transport, *, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False,
                 token: str | None = None,
                 batch_window_ms: float = DEFAULT_WINDOW_MS,
                 batch_max: int = DEFAULT_MAX_BATCH,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 queue_timeout: float = DEFAULT_QUEUE_TIMEOUT) -> None:
        from repro.service import SolverService

        self.transport = transport
        # the synchronous solve fast path: its own single-thread service
        # (the vector core never hops to a pool), shared by all handler
        # threads so concurrent /v1/solve requests coalesce into ticks
        self.solver = SolverService(workers=1, use_threads=True,
                                    batch_window_ms=batch_window_ms,
                                    batch_max=batch_max)
        self.admission = AdmissionController(max_inflight=max_inflight,
                                             max_queue=max_queue,
                                             queue_timeout=queue_timeout)
        self.draining = threading.Event()
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.transport = transport  # type: ignore[attr-defined]
        self.httpd.solver = self.solver  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self.httpd.token = token or None  # type: ignore[attr-defined]
        self.httpd.admission = self.admission  # type: ignore[attr-defined]
        self.httpd.draining = self.draining  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self.host
        if ":" in host:  # pragma: no cover - IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    def start(self) -> "SolverHTTPServer":
        """Serve on a background thread (for tests and embedding)."""
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` foreground)."""
        self.httpd.serve_forever()

    def drain(self, *, grace: float = 0.2) -> None:
        """Enter graceful-drain mode: refuse new work, finish what's in.

        New POSTs get a typed 503 :class:`ServerShutdownError`; live
        ``/events`` streams deliver an in-band error line (their clients
        raise typed, instead of seeing a dead socket); ``grace`` gives
        the streaming handlers a beat to flush those lines.
        """
        self.draining.set()
        if grace > 0:
            time.sleep(grace)

    def shutdown(self) -> None:
        # drain first so live event streams terminate with a typed
        # in-band line instead of being abandoned mid-chunk
        if not self.draining.is_set():
            self.drain()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.solver.shutdown()
        self.transport.close()

    def __enter__(self) -> "SolverHTTPServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def serve(*, host: str = "127.0.0.1", port: int = 8731,
          jobs_dir: str = ".repro-jobs", cache_dir: str | None = None,
          workers: int = 2, use_threads: bool = False,
          verbose: bool = False, token: str | None = None,
          batch_window_ms: float = DEFAULT_WINDOW_MS,
          batch_max: int = DEFAULT_MAX_BATCH,
          max_inflight: int = DEFAULT_MAX_INFLIGHT,
          max_queue: int = DEFAULT_MAX_QUEUE,
          drain_timeout: float = 30.0) -> int:
    """Run the solver service in the foreground (the ``repro serve`` body).

    Jobs are executed by a :class:`DiskTransport`, so every submission is
    durably recorded under ``jobs_dir`` and survives a server restart as a
    re-attachable record; synchronous ``/v1/solve`` requests coalesce into
    vectorized batch ticks governed by ``batch_window_ms`` /
    ``batch_max``.  ``token`` (default: the ``REPRO_TOKEN`` environment
    variable) turns on bearer-token auth for every route but
    ``/v1/healthz``.

    The work routes sit behind bounded admission (``max_inflight`` /
    ``max_queue``; excess load is shed with typed 503s + ``Retry-After``),
    and SIGTERM triggers a **graceful drain**: stop accepting work, send
    live event streams their in-band shutdown line, finish in-flight jobs
    (up to ``drain_timeout`` seconds), then exit.  Returns the process
    exit code.
    """
    if token is None:
        token = os.environ.get("REPRO_TOKEN") or None
    transport = DiskTransport(jobs_dir, cache_dir=cache_dir, workers=workers,
                              use_threads=use_threads)
    try:
        server = SolverHTTPServer(transport, host=host, port=port,
                                  verbose=verbose, token=token,
                                  batch_window_ms=batch_window_ms,
                                  batch_max=batch_max,
                                  max_inflight=max_inflight,
                                  max_queue=max_queue)
    except OSError as exc:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        return 2

    def _sigterm(_signum, _frame) -> None:
        # refuse new work immediately; stop the accept loop off-thread
        # (BaseServer.shutdown blocks until serve_forever exits, so it
        # must never run on the serving thread itself)
        print("SIGTERM: draining", file=sys.stderr)
        server.draining.set()
        threading.Thread(target=server.httpd.shutdown,
                         name="repro-serve-drain", daemon=True).start()

    previous = None
    try:  # pragma: no branch - signal module is always importable here
        previous = signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    print(f"repro solver service on {server.url} "
          f"(jobs: {transport.store.directory}, workers: {workers}, "
          f"batch window: {batch_window_ms:g}ms, "
          f"admission: {max_inflight} in flight / {max_queue} queued, "
          f"auth: {'bearer token' if token else 'open'}); "
          "Ctrl+C to stop", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.draining.set()
        print("shutting down", file=sys.stderr)
    finally:
        if server.draining.is_set():
            # graceful path: let in-flight jobs reach a terminal record
            remaining = transport.drain(timeout=drain_timeout)
            if remaining:
                print(f"drain timeout: {remaining} job(s) still running "
                      "(their records stay resumable)", file=sys.stderr)
            else:
                print("drained: all in-flight jobs finished",
                      file=sys.stderr)
        server.httpd.server_close()
        server.solver.shutdown()
        transport.close()
        if previous is not None:  # pragma: no cover - process exits anyway
            signal.signal(signal.SIGTERM, previous)
    return 0
