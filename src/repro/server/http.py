"""The ``repro serve`` HTTP solver service (stdlib ``http.server`` only).

A thin JSON front over any :class:`repro.api.client.Transport` — by
default a :class:`~repro.api.client.DiskTransport`, so every job the
server runs is durably recorded and clients can detach, die and re-attach
at will.  Routes (all under :data:`repro.api.protocol.PROTOCOL_PREFIX`):

=======  ==========================  ===========================================
Method   Path                        Body / response
=======  ==========================  ===========================================
POST     ``/v1/jobs``                :class:`SweepRequest` wire -> job record
GET      ``/v1/jobs``                ``{"jobs": [record, ...]}``
GET      ``/v1/jobs/<id>``           job record
GET      ``/v1/jobs/<id>/results``   result-table wire (409 until terminal)
POST     ``/v1/jobs/<id>/cancel``    job record after the cancel
GET      ``/v1/jobs/<id>/events``    chunked ndjson stream of progress events
GET      ``/v1/healthz``             liveness probe (never requires auth)
GET      ``/v1/queue``               queue depth / lease health counters
=======  ==========================  ===========================================

Failures are **typed error bodies** (:func:`repro.api.protocol.error_to_wire`),
mapped onto status codes: unknown job -> 404, malformed payload or
schema-version mismatch -> 400, premature results -> 409, missing or wrong
bearer token -> 401, anything else -> 500 — so the HTTP transport
re-raises the exact library exception the server hit.

Auth is optional bearer-token: start the server with ``--token`` (or
``REPRO_TOKEN``) and every route except ``/v1/healthz`` demands
``Authorization: Bearer <token>``, rejecting everything else with a typed
401 :class:`~repro.utils.errors.AuthError` body.  ``/v1/healthz`` stays
open so load balancers and autoscalers can probe without credentials;
``/v1/queue`` (their sizing signal) is authenticated like the job routes
because it leaks worker identities.

The event stream is genuinely incremental: HTTP/1.1 chunked transfer
encoding, one JSON object per line, flushed as the job progresses, closed
after the terminal event.
"""

from __future__ import annotations

import hmac
import json
import os
import re
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api.client import DiskTransport, Transport
from repro.api.protocol import (
    PROTOCOL_PREFIX,
    SCHEMA_VERSION,
    SweepRequest,
    error_to_wire,
    table_to_wire,
)
from repro.utils.errors import (
    AuthError,
    JobStateError,
    ReproError,
    SchemaVersionError,
    TransportError,
    UnknownJobError,
)

_JOB_ROUTE = re.compile(
    rf"^{re.escape(PROTOCOL_PREFIX)}/jobs/([^/]+)(?:/(results|cancel|events))?$")

#: HTTP status for each typed failure (anything else is a 500).
_STATUS_OF = (
    (AuthError, 401),
    (UnknownJobError, 404),
    (SchemaVersionError, 400),
    (JobStateError, 409),
    (TransportError, 400),
    (ReproError, 400),
)


def _status_for(exc: BaseException) -> int:
    for cls, code in _STATUS_OF:
        if isinstance(exc, cls):
            return code
    return 500


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-solver/1"

    # the owning SolverHTTPServer sets this on the server object
    @property
    def transport(self) -> Transport:
        return self.server.transport  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            sys.stderr.write("repro-serve: " + format % args + "\n")

    def _send_json(self, payload: dict, *, status: int = 200) -> None:
        body = json.dumps(payload, default=repr).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, exc: BaseException) -> None:
        self._send_json(error_to_wire(exc), status=_status_for(exc))

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise TransportError("malformed request: empty body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise TransportError(
                f"malformed request: body is not JSON ({exc})") from exc

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._route("POST")

    def _check_auth(self) -> None:
        """Demand the configured bearer token (no-op on an open server)."""
        token = getattr(self.server, "token", None)
        if not token:
            return
        header = str(self.headers.get("Authorization") or "")
        offered = header[len("Bearer "):] if header.startswith("Bearer ") \
            else ""
        if not offered or not hmac.compare_digest(offered, token):
            raise AuthError(
                "this server requires a bearer token; send "
                "'Authorization: Bearer <token>' (repro --token / "
                "REPRO_TOKEN)"
            )

    def _route(self, method: str) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == f"{PROTOCOL_PREFIX}/healthz" and method == "GET":
                return self._healthz()  # liveness probes skip auth
            self._check_auth()
            if path == f"{PROTOCOL_PREFIX}/queue" and method == "GET":
                return self._queue()
            if path == f"{PROTOCOL_PREFIX}/jobs":
                if method == "POST":
                    return self._submit()
                return self._list_jobs()
            match = _JOB_ROUTE.match(path)
            if match:
                job_id, verb = match.group(1), match.group(2)
                if verb is None and method == "GET":
                    return self._status(job_id)
                if verb == "results" and method == "GET":
                    return self._results(job_id)
                if verb == "cancel" and method == "POST":
                    return self._cancel(job_id)
                if verb == "events" and method == "GET":
                    return self._events(job_id)
            raise UnknownJobError(
                f"no route {method} {path}; see {PROTOCOL_PREFIX}/jobs")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:
            try:
                self._send_error_body(exc)
            except BrokenPipeError:  # pragma: no cover - client went away
                pass

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #
    def _healthz(self) -> None:
        self._send_json({
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "protocol": PROTOCOL_PREFIX,
            "auth": bool(getattr(self.server, "token", None)),
        })

    def _queue(self) -> None:
        store = getattr(self.transport, "store", None)
        if store is None:
            raise TransportError(
                "queue statistics need a disk-backed server (this one runs "
                "an in-process transport with no job store)"
            )
        from repro.fleet.ops import queue_stats

        stale_after = getattr(self.transport, "stale_after", None)
        stats = (queue_stats(store) if stale_after is None
                 else queue_stats(store, stale_after=stale_after))
        self._send_json({"schema_version": SCHEMA_VERSION, **stats})

    def _submit(self) -> None:
        request = SweepRequest.from_wire(self._read_body())
        record = self.transport.submit(request)
        self._send_json(record.to_wire())

    def _list_jobs(self) -> None:
        records, skipped = self.transport.scan_jobs()
        self._send_json({"schema_version": SCHEMA_VERSION,
                         "jobs": [r.to_wire() for r in records],
                         "skipped": [list(pair) for pair in skipped]})

    def _status(self, job_id: str) -> None:
        self._send_json(self.transport.status(job_id).to_wire())

    def _results(self, job_id: str) -> None:
        record = self.transport.status(job_id)
        if not record.terminal:
            raise JobStateError(
                f"job {job_id} is still {record.status} "
                f"({record.done}/{record.total} done); poll "
                f"{PROTOCOL_PREFIX}/jobs/{job_id} until it is terminal"
            )
        table = self.transport.fetch_results(job_id)
        self._send_json(table_to_wire(table))

    def _cancel(self, job_id: str) -> None:
        self._send_json(self.transport.cancel(job_id).to_wire())

    def _events(self, job_id: str) -> None:
        self.transport.status(job_id)  # 404 before committing to a stream
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        # from here on the headers are gone: a failure mid-stream must be
        # delivered as an in-band error *line* (the client transport
        # re-raises it), never as a second HTTP response into the body
        try:
            try:
                for event in self.transport.events(job_id, poll_interval=0.05):
                    self._write_chunk(
                        json.dumps(event.to_wire()).encode("utf-8") + b"\n")
            except BrokenPipeError:
                raise
            except Exception as exc:
                self._write_chunk(
                    json.dumps(error_to_wire(exc)).encode("utf-8") + b"\n")
            self._write_chunk(b"")  # terminating zero-length chunk
        except BrokenPipeError:  # pragma: no cover - client went away
            self.close_connection = True

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        if data:
            self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()


class SolverHTTPServer:
    """A running solver service bound to ``host:port``.

    Wraps a :class:`ThreadingHTTPServer` (one thread per request, so a
    streaming ``/events`` consumer never blocks a ``/jobs`` poll) around
    any transport.  Usable programmatically (tests bind port 0) or via
    ``repro serve``.
    """

    def __init__(self, transport: Transport, *, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False,
                 token: str | None = None) -> None:
        self.transport = transport
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.transport = transport  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self.httpd.token = token or None  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self.host
        if ":" in host:  # pragma: no cover - IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    def start(self) -> "SolverHTTPServer":
        """Serve on a background thread (for tests and embedding)."""
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` foreground)."""
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.transport.close()

    def __enter__(self) -> "SolverHTTPServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def serve(*, host: str = "127.0.0.1", port: int = 8731,
          jobs_dir: str = ".repro-jobs", cache_dir: str | None = None,
          workers: int = 2, use_threads: bool = False,
          verbose: bool = False, token: str | None = None) -> int:
    """Run the solver service in the foreground (the ``repro serve`` body).

    Jobs are executed by a :class:`DiskTransport`, so every submission is
    durably recorded under ``jobs_dir`` and survives a server restart as a
    re-attachable record.  ``token`` (default: the ``REPRO_TOKEN``
    environment variable) turns on bearer-token auth for every route but
    ``/v1/healthz``.  Returns the process exit code.
    """
    if token is None:
        token = os.environ.get("REPRO_TOKEN") or None
    transport = DiskTransport(jobs_dir, cache_dir=cache_dir, workers=workers,
                              use_threads=use_threads)
    try:
        server = SolverHTTPServer(transport, host=host, port=port,
                                  verbose=verbose, token=token)
    except OSError as exc:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        return 2
    print(f"repro solver service on {server.url} "
          f"(jobs: {transport.store.directory}, workers: {workers}, "
          f"auth: {'bearer token' if token else 'open'}); "
          "Ctrl+C to stop", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.httpd.server_close()
        transport.close()
    return 0
