"""The ``repro serve`` HTTP solver service (stdlib ``http.server`` only).

A thin JSON front over any :class:`repro.api.client.Transport` — by
default a :class:`~repro.api.client.DiskTransport`, so every job the
server runs is durably recorded and clients can detach, die and re-attach
at will.  Routes (all under :data:`repro.api.protocol.PROTOCOL_PREFIX`):

=======  ==========================  ===========================================
Method   Path                        Body / response
=======  ==========================  ===========================================
POST     ``/v1/solve``               :class:`SolveRequest` wire -> solve response
POST     ``/v1/solve_batch``         request batch -> one packed row frame
GET      ``/v1/batch_stats``         micro-batcher coalescing statistics
POST     ``/v1/jobs``                :class:`SweepRequest` wire -> job record
GET      ``/v1/jobs``                ``{"jobs": [record, ...]}``
GET      ``/v1/jobs/<id>``           job record
GET      ``/v1/jobs/<id>/results``   result-table wire (409 until terminal)
POST     ``/v1/jobs/<id>/cancel``    job record after the cancel
GET      ``/v1/jobs/<id>/events``    chunked ndjson stream of progress events
GET      ``/v1/healthz``             liveness probe (never requires auth)
GET      ``/v1/queue``               queue depth / lease health counters
=======  ==========================  ===========================================

``/v1/solve`` is the synchronous fast path: no job record, no polling —
the request is solved inline (coalesced with concurrent requests by the
server's :class:`repro.service.MicroBatcher`) and answered in the same
round-trip with a :class:`~repro.api.protocol.SolveResponse` body, 200
even for a captured solve failure (``ok=false`` + typed ``error_type``).
``/v1/solve_batch`` takes ``{"requests": [...], "keep_speeds": bool}``
and answers with one compact binary row frame
(:mod:`repro.api.rowcodec`): all numeric columns of all rows in a single
base64 float64 matrix, decoded client-side back into response rows.

Failures are **typed error bodies** (:func:`repro.api.protocol.error_to_wire`),
mapped onto status codes: unknown job -> 404, malformed payload or
schema-version mismatch -> 400, premature results -> 409, missing or wrong
bearer token -> 401, anything else -> 500 — so the HTTP transport
re-raises the exact library exception the server hit.

Auth is optional bearer-token: start the server with ``--token`` (or
``REPRO_TOKEN``) and every route except ``/v1/healthz`` demands
``Authorization: Bearer <token>``, rejecting everything else with a typed
401 :class:`~repro.utils.errors.AuthError` body.  ``/v1/healthz`` stays
open so load balancers and autoscalers can probe without credentials;
``/v1/queue`` (their sizing signal) is authenticated like the job routes
because it leaks worker identities.

The event stream is genuinely incremental: HTTP/1.1 chunked transfer
encoding, one JSON object per line, flushed as the job progresses, closed
after the terminal event.
"""

from __future__ import annotations

import hmac
import json
import os
import re
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import numpy as np

from repro.api.client import (
    DiskTransport,
    Transport,
    execute_solve,
    execute_solve_batch,
)
from repro.api.protocol import (
    PROTOCOL_PREFIX,
    SCHEMA_VERSION,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    check_schema_version,
    error_to_wire,
    table_to_wire,
)
from repro.api.rowcodec import encode_rows
from repro.service.batcher import DEFAULT_MAX_BATCH, DEFAULT_WINDOW_MS
from repro.utils.errors import (
    AuthError,
    JobStateError,
    ReproError,
    SchemaVersionError,
    TransportError,
    UnknownJobError,
)

_JOB_ROUTE = re.compile(
    rf"^{re.escape(PROTOCOL_PREFIX)}/jobs/([^/]+)(?:/(results|cancel|events))?$")

#: HTTP status for each typed failure (anything else is a 500).
_STATUS_OF = (
    (AuthError, 401),
    (UnknownJobError, 404),
    (SchemaVersionError, 400),
    (JobStateError, 409),
    (TransportError, 400),
    (ReproError, 400),
)


def _status_for(exc: BaseException) -> int:
    for cls, code in _STATUS_OF:
        if isinstance(exc, cls):
            return code
    return 500


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-solver/1"
    # buffer the response so status line + headers + body leave as one TCP
    # segment, and disable Nagle: an unbuffered wfile writes each header as
    # its own packet, which interacts with delayed ACKs into ~40ms stalls
    # on the latency-sensitive /v1/solve round-trip (handle_one_request
    # flushes after every response, and the chunked event stream flushes
    # explicitly, so buffering never delays a reply)
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    # the owning SolverHTTPServer sets these on the server object
    @property
    def transport(self) -> Transport:
        return self.server.transport  # type: ignore[attr-defined]

    @property
    def solver(self):
        """The shared solve-path service (micro-batcher + vector core)."""
        return self.server.solver  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            sys.stderr.write("repro-serve: " + format % args + "\n")

    def _send_json(self, payload: dict, *, status: int = 200) -> None:
        body = json.dumps(payload, default=repr).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, exc: BaseException) -> None:
        self._send_json(error_to_wire(exc), status=_status_for(exc))

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise TransportError("malformed request: empty body")
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise TransportError(
                f"malformed request: body is not JSON ({exc})") from exc

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._route("POST")

    def _check_auth(self) -> None:
        """Demand the configured bearer token (no-op on an open server)."""
        token = getattr(self.server, "token", None)
        if not token:
            return
        header = str(self.headers.get("Authorization") or "")
        offered = header[len("Bearer "):] if header.startswith("Bearer ") \
            else ""
        if not offered or not hmac.compare_digest(offered, token):
            raise AuthError(
                "this server requires a bearer token; send "
                "'Authorization: Bearer <token>' (repro --token / "
                "REPRO_TOKEN)"
            )

    def _route(self, method: str) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == f"{PROTOCOL_PREFIX}/healthz" and method == "GET":
                return self._healthz()  # liveness probes skip auth
            self._check_auth()
            if path == f"{PROTOCOL_PREFIX}/solve" and method == "POST":
                return self._solve()
            if path == f"{PROTOCOL_PREFIX}/solve_batch" and method == "POST":
                return self._solve_batch()
            if path == f"{PROTOCOL_PREFIX}/batch_stats" and method == "GET":
                return self._batch_stats()
            if path == f"{PROTOCOL_PREFIX}/queue" and method == "GET":
                return self._queue()
            if path == f"{PROTOCOL_PREFIX}/jobs":
                if method == "POST":
                    return self._submit()
                return self._list_jobs()
            match = _JOB_ROUTE.match(path)
            if match:
                job_id, verb = match.group(1), match.group(2)
                if verb is None and method == "GET":
                    return self._status(job_id)
                if verb == "results" and method == "GET":
                    return self._results(job_id)
                if verb == "cancel" and method == "POST":
                    return self._cancel(job_id)
                if verb == "events" and method == "GET":
                    return self._events(job_id)
            raise UnknownJobError(
                f"no route {method} {path}; see {PROTOCOL_PREFIX}/jobs")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:
            try:
                self._send_error_body(exc)
            except BrokenPipeError:  # pragma: no cover - client went away
                pass

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #
    def _healthz(self) -> None:
        self._send_json({
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "protocol": PROTOCOL_PREFIX,
            "auth": bool(getattr(self.server, "token", None)),
        })

    def _queue(self) -> None:
        store = getattr(self.transport, "store", None)
        if store is None:
            raise TransportError(
                "queue statistics need a disk-backed server (this one runs "
                "an in-process transport with no job store)"
            )
        from repro.fleet.ops import queue_stats

        stale_after = getattr(self.transport, "stale_after", None)
        stats = (queue_stats(store) if stale_after is None
                 else queue_stats(store, stale_after=stale_after))
        self._send_json({"schema_version": SCHEMA_VERSION, **stats})

    def _solve(self) -> None:
        """The synchronous fast path: solve inline, answer in-band.

        Coalesces with concurrent requests through the solver service's
        micro-batcher; a captured failure is a 200 with ``ok=false`` (the
        client re-raises it typed), only a malformed payload is a 4xx.
        """
        request = SolveRequest.from_wire(self._read_body())
        self._send_json(execute_solve(self.solver, request).to_wire())

    def _solve_batch(self) -> None:
        """One request, one batch tick, one packed binary row frame."""
        body = self._read_body()
        if not isinstance(body, dict) or \
                not isinstance(body.get("requests"), list):
            raise TransportError(
                "malformed batch solve: expected an object with a "
                "requests array")
        check_schema_version(body, what="batch solve request")
        keep_speeds = bool(body.get("keep_speeds", False))
        rows: list[SolveResponse | None] = [None] * len(body["requests"])
        parsed: list[tuple[int, SolveRequest]] = []
        for i, payload in enumerate(body["requests"]):
            try:
                parsed.append((i, SolveRequest.from_wire(payload)))
            except ReproError as exc:  # a bad instance is a row, not a 4xx
                name = str(payload.get("name", "")) \
                    if isinstance(payload, dict) else ""
                rows[i] = SolveResponse.from_failure(exc, name=name)
        responses = execute_solve_batch(
            self.solver, [request for _i, request in parsed],
            keep_speeds=keep_speeds)
        order_of: dict[int, list[str]] = {}
        for (i, request), response in zip(parsed, responses):
            rows[i] = response
            order_of[i] = list((request.graph.get("tasks") or {}).keys())
        speeds_vectors = None
        if any(row.speeds for row in rows):
            # re-emit each speed map as a vector in the request's own task
            # order, which the client reattaches without names travelling
            speeds_vectors = []
            for i, row in enumerate(rows):
                order = order_of.get(i)
                if row.speeds and order \
                        and all(t in row.speeds for t in order):
                    speeds_vectors.append(np.array(
                        [row.speeds[t] for t in order], dtype="<f8"))
                else:
                    speeds_vectors.append(None)
        self._send_json(encode_rows(rows, speeds_vectors=speeds_vectors))

    def _batch_stats(self) -> None:
        self._send_json({"schema_version": SCHEMA_VERSION,
                         **self.solver.batch_stats()})

    def _submit(self) -> None:
        request = SweepRequest.from_wire(self._read_body())
        record = self.transport.submit(request)
        self._send_json(record.to_wire())

    def _list_jobs(self) -> None:
        records, skipped = self.transport.scan_jobs()
        self._send_json({"schema_version": SCHEMA_VERSION,
                         "jobs": [r.to_wire() for r in records],
                         "skipped": [list(pair) for pair in skipped]})

    def _status(self, job_id: str) -> None:
        self._send_json(self.transport.status(job_id).to_wire())

    def _results(self, job_id: str) -> None:
        record = self.transport.status(job_id)
        if not record.terminal:
            raise JobStateError(
                f"job {job_id} is still {record.status} "
                f"({record.done}/{record.total} done); poll "
                f"{PROTOCOL_PREFIX}/jobs/{job_id} until it is terminal"
            )
        table = self.transport.fetch_results(job_id)
        self._send_json(table_to_wire(table))

    def _cancel(self, job_id: str) -> None:
        self._send_json(self.transport.cancel(job_id).to_wire())

    def _events(self, job_id: str) -> None:
        self.transport.status(job_id)  # 404 before committing to a stream
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        # from here on the headers are gone: a failure mid-stream must be
        # delivered as an in-band error *line* (the client transport
        # re-raises it), never as a second HTTP response into the body
        try:
            try:
                for event in self.transport.events(job_id, poll_interval=0.05):
                    self._write_chunk(
                        json.dumps(event.to_wire()).encode("utf-8") + b"\n")
            except BrokenPipeError:
                raise
            except Exception as exc:
                self._write_chunk(
                    json.dumps(error_to_wire(exc)).encode("utf-8") + b"\n")
            self._write_chunk(b"")  # terminating zero-length chunk
        except BrokenPipeError:  # pragma: no cover - client went away
            self.close_connection = True

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        if data:
            self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()


class SolverHTTPServer:
    """A running solver service bound to ``host:port``.

    Wraps a :class:`ThreadingHTTPServer` (one thread per request, so a
    streaming ``/events`` consumer never blocks a ``/jobs`` poll) around
    any transport.  Usable programmatically (tests bind port 0) or via
    ``repro serve``.
    """

    def __init__(self, transport: Transport, *, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False,
                 token: str | None = None,
                 batch_window_ms: float = DEFAULT_WINDOW_MS,
                 batch_max: int = DEFAULT_MAX_BATCH) -> None:
        from repro.service import SolverService

        self.transport = transport
        # the synchronous solve fast path: its own single-thread service
        # (the vector core never hops to a pool), shared by all handler
        # threads so concurrent /v1/solve requests coalesce into ticks
        self.solver = SolverService(workers=1, use_threads=True,
                                    batch_window_ms=batch_window_ms,
                                    batch_max=batch_max)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.transport = transport  # type: ignore[attr-defined]
        self.httpd.solver = self.solver  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self.httpd.token = token or None  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self.host
        if ":" in host:  # pragma: no cover - IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    def start(self) -> "SolverHTTPServer":
        """Serve on a background thread (for tests and embedding)."""
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` foreground)."""
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self.solver.shutdown()
        self.transport.close()

    def __enter__(self) -> "SolverHTTPServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


def serve(*, host: str = "127.0.0.1", port: int = 8731,
          jobs_dir: str = ".repro-jobs", cache_dir: str | None = None,
          workers: int = 2, use_threads: bool = False,
          verbose: bool = False, token: str | None = None,
          batch_window_ms: float = DEFAULT_WINDOW_MS,
          batch_max: int = DEFAULT_MAX_BATCH) -> int:
    """Run the solver service in the foreground (the ``repro serve`` body).

    Jobs are executed by a :class:`DiskTransport`, so every submission is
    durably recorded under ``jobs_dir`` and survives a server restart as a
    re-attachable record; synchronous ``/v1/solve`` requests coalesce into
    vectorized batch ticks governed by ``batch_window_ms`` /
    ``batch_max``.  ``token`` (default: the ``REPRO_TOKEN`` environment
    variable) turns on bearer-token auth for every route but
    ``/v1/healthz``.  Returns the process exit code.
    """
    if token is None:
        token = os.environ.get("REPRO_TOKEN") or None
    transport = DiskTransport(jobs_dir, cache_dir=cache_dir, workers=workers,
                              use_threads=use_threads)
    try:
        server = SolverHTTPServer(transport, host=host, port=port,
                                  verbose=verbose, token=token,
                                  batch_window_ms=batch_window_ms,
                                  batch_max=batch_max)
    except OSError as exc:
        print(f"error: cannot bind {host}:{port}: {exc}", file=sys.stderr)
        return 2
    print(f"repro solver service on {server.url} "
          f"(jobs: {transport.store.directory}, workers: {workers}, "
          f"batch window: {batch_window_ms:g}ms, "
          f"auth: {'bearer token' if token else 'open'}); "
          "Ctrl+C to stop", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.httpd.server_close()
        server.solver.shutdown()
        transport.close()
    return 0
