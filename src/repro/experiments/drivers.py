"""Experiment drivers E1-E10.

Each function runs one experiment of the index in DESIGN.md section 4 and
returns a :class:`repro.utils.tables.Table` whose rows are what the
corresponding table/figure of an evaluation section would contain.  The
functions accept size parameters so that the pytest-benchmark wrappers can
run them at a moderate scale while EXPERIMENTS.md records a larger run.

All drivers validate every produced solution with
:func:`repro.core.validation.check_solution`, so a run doubles as an
end-to-end integrity check of the library.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Sequence

from repro.baselines.naive import solve_no_reclaim, solve_uniform_scaling
from repro.continuous.closed_forms import solve_fork
from repro.continuous.general import solve_general_convex
from repro.continuous.series_parallel import solve_series_parallel
from repro.continuous.solve import solve_continuous
from repro.continuous.tree import solve_tree
from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.problem import MinEnergyProblem
from repro.core.validation import check_solution
from repro.discrete.exact import solve_discrete_exact
from repro.discrete.hardness import decide_two_partition_via_energy, two_partition_gadget
from repro.discrete.heuristics import solve_discrete_best_heuristic
from repro.discrete.solve import solve_discrete
from repro.experiments.workloads import (
    WorkloadSpec,
    make_workload,
    matching_models,
    standard_mode_sets,
    workload_ensemble,
)
from repro.graphs import generators
from repro.incremental.approx import solve_incremental_approx, theorem5_ratio
from repro.utils.rng import make_rng
from repro.utils.tables import Table
from repro.vdd.lp import solve_vdd_lp
from repro.vdd.mixing import solve_vdd_mixing


# --------------------------------------------------------------------------- #
# E1 — Theorem 1: fork closed form agrees with the convex solver
# --------------------------------------------------------------------------- #
def experiment_e1_fork_closed_form(*, sizes: Sequence[int] = (2, 4, 8, 16, 32, 64),
                                   slacks: Sequence[float] = (1.2, 2.0, 4.0),
                                   seed: int = 1) -> Table:
    """Compare the Theorem 1 closed form against the numerical optimum.

    One row per (fork size, deadline slack): the closed-form energy, the
    convex-solver energy, their relative difference, and whether the
    ``s_max``-saturated branch of the theorem was used.
    """
    table = Table(
        columns=["n_leaves", "slack", "closed_form_energy", "convex_energy",
                 "relative_difference", "saturated_branch"],
        title="E1 - Theorem 1 fork closed form vs convex optimum",
    )
    rng = make_rng(seed)
    for n in sizes:
        for slack in slacks:
            graph = generators.fork(n, seed=int(rng.integers(0, 2**31 - 1)))
            s_max = 1.0
            min_makespan = (graph.work("T0") + max(graph.work(f"T{i+1}") for i in range(n))) / s_max
            problem = MinEnergyProblem(graph=graph, deadline=slack * min_makespan,
                                       model=ContinuousModel(s_max=s_max))
            closed = solve_fork(problem)
            convex = solve_general_convex(problem)
            check_solution(closed)
            check_solution(convex)
            saturated = math.isclose(max(closed.speeds().values()), s_max, rel_tol=1e-6)
            diff = abs(closed.energy - convex.energy) / convex.energy
            table.add_row(n, slack, closed.energy, convex.energy, diff, saturated)
    return table


# --------------------------------------------------------------------------- #
# E2 — Theorem 2: trees and series-parallel graphs
# --------------------------------------------------------------------------- #
def experiment_e2_tree_sp(*, sizes: Sequence[int] = (8, 16, 32, 64),
                          slack: float = 2.0, seed: int = 2) -> Table:
    """Compare the polynomial tree/SP algorithms against the convex solver."""
    table = Table(
        columns=["graph_class", "n_tasks", "poly_energy", "convex_energy",
                 "relative_difference", "poly_solver"],
        title="E2 - Theorem 2 tree / series-parallel algorithms vs convex optimum",
    )
    rng = make_rng(seed)
    for n in sizes:
        for cls in ("tree", "series_parallel"):
            graph_seed = int(rng.integers(0, 2**31 - 1))
            if cls == "tree":
                graph = generators.random_tree(n, seed=graph_seed)
            else:
                graph = generators.random_series_parallel(n, seed=graph_seed)
            spec_speed = 1.0
            from repro.graphs.analysis import longest_path_length

            min_makespan = longest_path_length(graph) / spec_speed
            problem = MinEnergyProblem(graph=graph, deadline=slack * min_makespan,
                                       model=ContinuousModel())
            poly = solve_tree(problem) if cls == "tree" else solve_series_parallel(problem)
            convex = solve_general_convex(
                problem.with_model(ContinuousModel(s_max=100.0 * spec_speed))
            )
            check_solution(poly)
            check_solution(convex)
            diff = abs(poly.energy - convex.energy) / convex.energy
            table.add_row(cls, graph.n_tasks, poly.energy, convex.energy, diff, poly.solver)
    return table


# --------------------------------------------------------------------------- #
# E3 — Theorem 3: Vdd-Hopping LP
# --------------------------------------------------------------------------- #
def experiment_e3_vdd_lp(*, n_tasks: int = 20, mode_counts: Sequence[int] = (2, 3, 4, 6, 8),
                         slack: float = 1.5, repetitions: int = 3, seed: int = 3) -> Table:
    """Vdd-Hopping LP optimum vs the Continuous lower bound and the mixing heuristic.

    Sanity relations checked per instance: ``continuous <= LP <= mixing`` and
    ``LP <= discrete heuristic`` (hopping can only help).
    """
    table = Table(
        columns=["n_modes", "continuous_lb", "vdd_lp", "vdd_mixing",
                 "discrete_heuristic", "lp_over_lb", "mixing_over_lp"],
        title="E3 - Theorem 3 Vdd-Hopping LP (mean over repetitions)",
    )
    mode_sets = standard_mode_sets(1.0)
    for m in mode_counts:
        sums = {"lb": 0.0, "lp": 0.0, "mix": 0.0, "disc": 0.0}
        base = WorkloadSpec(graph_class="layered", n_tasks=n_tasks, n_processors=3,
                            slack=slack, seed=seed + m)
        problems = workload_ensemble(base, repetitions=repetitions)
        for problem in problems:
            models = matching_models(1.0, m, mode_sets=mode_sets)
            continuous = solve_continuous(problem.with_model(models["continuous"]))
            vdd_problem = problem.with_model(models["vdd"])
            lp = solve_vdd_lp(vdd_problem)
            mixing = solve_vdd_mixing(vdd_problem)
            disc = solve_discrete_best_heuristic(problem.with_model(models["discrete"]))
            for s in (continuous, lp, mixing, disc):
                check_solution(s)
            sums["lb"] += continuous.energy
            sums["lp"] += lp.energy
            sums["mix"] += mixing.energy
            sums["disc"] += disc.energy
        k = float(len(problems))
        lb, lp_e, mix, disc_e = (sums["lb"] / k, sums["lp"] / k,
                                 sums["mix"] / k, sums["disc"] / k)
        table.add_row(m, lb, lp_e, mix, disc_e, lp_e / lb, mix / lp_e)
    return table


# --------------------------------------------------------------------------- #
# E4 — Theorem 4: NP-hardness gadget and exact-search growth
# --------------------------------------------------------------------------- #
def experiment_e4_discrete_exact(*, sizes: Sequence[int] = (6, 8, 10, 12),
                                 repetitions: int = 3, seed: int = 4) -> Table:
    """Exact branch-and-bound growth and 2-Partition round-trip.

    One row per instance size: mean explored nodes of exact search on random
    layered DAGs (with 3 modes), plus the fraction of random 2-Partition
    gadgets answered consistently with a brute-force subset-sum check.
    """
    table = Table(
        columns=["n_tasks", "mean_nodes_explored", "mean_exact_energy",
                 "mean_heuristic_energy", "heuristic_over_exact",
                 "two_partition_agreement"],
        title="E4 - Theorem 4 exact search growth and 2-Partition reduction",
    )
    rng = make_rng(seed)
    modes = (0.4, 0.7, 1.0)
    for n in sizes:
        nodes = 0.0
        exact_sum = 0.0
        heur_sum = 0.0
        agreement = 0
        for _rep in range(repetitions):
            spec = WorkloadSpec(graph_class="layered", n_tasks=n, n_processors=2,
                                slack=1.6, seed=int(rng.integers(0, 2**31 - 1)))
            problem = make_workload(spec, model=DiscreteModel(modes=modes))
            exact = solve_discrete_exact(problem)
            heuristic = solve_discrete_best_heuristic(problem)
            check_solution(exact)
            check_solution(heuristic)
            nodes += exact.metadata["nodes_explored"]
            exact_sum += exact.energy
            heur_sum += heuristic.energy

            # 2-Partition round-trip on a small random instance
            values = [int(v) for v in rng.integers(1, 12, size=min(n, 10))]
            if sum(values) % 2 == 1:
                values[0] += 1
            expected = _brute_force_two_partition(values)
            answered = decide_two_partition_via_energy(values)
            agreement += int(expected == answered)
        k = float(repetitions)
        table.add_row(n, nodes / k, exact_sum / k, heur_sum / k,
                      (heur_sum / k) / (exact_sum / k), agreement / k)
    return table


def _brute_force_two_partition(values: list[int]) -> bool:
    """Reference subset-sum decision used to validate the reduction."""
    total = sum(values)
    if total % 2 == 1:
        return False
    target = total // 2
    reachable = {0}
    for v in values:
        reachable |= {r + v for r in reachable if r + v <= target}
    return target in reachable


# --------------------------------------------------------------------------- #
# E5 — Theorem 5 / Proposition 1: Incremental approximation ratios
# --------------------------------------------------------------------------- #
def experiment_e5_incremental_approx(*, n_tasks: int = 16,
                                     deltas: Sequence[float] = (0.35, 0.175, 0.1, 0.05),
                                     k_values: Sequence[int] = (1, 4, 1000),
                                     repetitions: int = 3, seed: int = 5) -> Table:
    """Measured vs guaranteed approximation ratios for the Incremental model.

    For every grid increment ``delta`` and accuracy parameter ``K``, reports
    the Theorem 5 a-priori bound and the worst measured ratio against the
    Continuous lower bound across the ensemble; the measured ratio must not
    exceed the bound.
    """
    table = Table(
        columns=["delta", "k", "a_priori_ratio", "worst_measured_ratio",
                 "mean_measured_ratio", "within_guarantee"],
        title="E5 - Theorem 5 Incremental approximation ratios",
    )
    s_min, s_max = 0.3, 1.0
    for delta in deltas:
        model = IncrementalModel.from_range(s_min, s_max, delta)
        for k in k_values:
            worst = 0.0
            total = 0.0
            count = 0
            base = WorkloadSpec(graph_class="layered", n_tasks=n_tasks, n_processors=3,
                                slack=1.4, seed=seed)
            for problem in workload_ensemble(base, repetitions=repetitions):
                inc_problem = problem.with_model(model)
                solution = solve_incremental_approx(inc_problem, k=k)
                check_solution(solution)
                ratio = solution.metadata["a_posteriori_ratio"]
                worst = max(worst, ratio)
                total += ratio
                count += 1
            bound = theorem5_ratio(model, k)
            table.add_row(delta, k, bound, worst, total / count, worst <= bound + 1e-9)
    return table


# --------------------------------------------------------------------------- #
# E6 — report-style figure: energy ratio vs number of modes
# --------------------------------------------------------------------------- #
def experiment_e6_modes_sweep(*, n_tasks: int = 24,
                              mode_counts: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
                              slack: float = 1.5, repetitions: int = 3,
                              seed: int = 6) -> Table:
    """Energy ratio over the Continuous lower bound as the mode count grows.

    The figure's expected shape: every mode-based model converges towards
    1.0 as modes are added; Vdd-Hopping converges fastest (it interpolates
    between modes), the Discrete heuristic is the slowest, and the
    Incremental model sits close to Vdd-Hopping once its grid is fine.
    """
    table = Table(
        columns=["n_modes", "discrete_ratio", "vdd_ratio", "incremental_ratio"],
        title="E6 - energy ratio vs Continuous lower bound as a function of mode count",
    )
    mode_sets = standard_mode_sets(1.0)
    for m in mode_counts:
        sums = {"disc": 0.0, "vdd": 0.0, "inc": 0.0}
        base = WorkloadSpec(graph_class="layered", n_tasks=n_tasks, n_processors=4,
                            slack=slack, seed=seed + m)
        problems = workload_ensemble(base, repetitions=repetitions)
        for problem in problems:
            models = matching_models(1.0, m, mode_sets=mode_sets)
            lb = solve_continuous(problem.with_model(models["continuous"])).energy
            disc = solve_discrete(problem.with_model(models["discrete"]), exact=False)
            vdd = solve_vdd_lp(problem.with_model(models["vdd"]))
            inc = solve_incremental_approx(problem.with_model(models["incremental"]))
            for s in (disc, vdd, inc):
                check_solution(s)
            sums["disc"] += disc.energy / lb
            sums["vdd"] += vdd.energy / lb
            sums["inc"] += inc.energy / lb
        k = float(len(problems))
        table.add_row(m, sums["disc"] / k, sums["vdd"] / k, sums["inc"] / k)
    return table


# --------------------------------------------------------------------------- #
# E7 — report-style figure: energy ratio vs deadline tightness
# --------------------------------------------------------------------------- #
def experiment_e7_deadline_sweep(*, n_tasks: int = 24,
                                 slacks: Sequence[float] = (1.05, 1.2, 1.5, 2.0, 3.0, 4.0),
                                 n_modes: int = 5, repetitions: int = 3,
                                 seed: int = 7) -> Table:
    """Energy ratio over the Continuous lower bound as the deadline loosens.

    Expected shape: ratios are worst near a tight deadline (speeds are forced
    onto the few fast modes) and improve as the deadline loosens, until every
    model hits the slowest admissible speed and the ratios flatten.
    """
    table = Table(
        columns=["slack", "discrete_ratio", "vdd_ratio", "incremental_ratio",
                 "uniform_baseline_ratio"],
        title="E7 - energy ratio vs deadline tightness (D / minimum makespan)",
    )
    mode_sets = standard_mode_sets(1.0)
    for slack in slacks:
        sums = {"disc": 0.0, "vdd": 0.0, "inc": 0.0, "uniform": 0.0}
        base = WorkloadSpec(graph_class="layered", n_tasks=n_tasks, n_processors=4,
                            slack=slack, seed=seed)
        problems = workload_ensemble(base, repetitions=repetitions)
        for problem in problems:
            models = matching_models(1.0, n_modes, mode_sets=mode_sets)
            lb = solve_continuous(problem.with_model(models["continuous"])).energy
            disc = solve_discrete(problem.with_model(models["discrete"]), exact=False)
            vdd = solve_vdd_lp(problem.with_model(models["vdd"]))
            inc = solve_incremental_approx(problem.with_model(models["incremental"]))
            uniform = solve_uniform_scaling(problem.with_model(models["discrete"]))
            for s in (disc, vdd, inc, uniform):
                check_solution(s)
            sums["disc"] += disc.energy / lb
            sums["vdd"] += vdd.energy / lb
            sums["inc"] += inc.energy / lb
            sums["uniform"] += uniform.energy / lb
        k = float(len(problems))
        table.add_row(slack, sums["disc"] / k, sums["vdd"] / k, sums["inc"] / k,
                      sums["uniform"] / k)
    return table


# --------------------------------------------------------------------------- #
# E8 — report-style table: per-graph-class comparison
# --------------------------------------------------------------------------- #
def experiment_e8_graph_classes(*, n_tasks: int = 24, n_modes: int = 5,
                                slack: float = 1.5, repetitions: int = 3,
                                seed: int = 8,
                                classes: Sequence[str] = ("chain", "fork", "tree",
                                                          "series_parallel", "layered")
                                ) -> Table:
    """Energy ratios per graph class for every model (one table row per class)."""
    table = Table(
        columns=["graph_class", "continuous_energy", "discrete_ratio", "vdd_ratio",
                 "incremental_ratio"],
        title="E8 - per-graph-class comparison of the energy models",
    )
    mode_sets = standard_mode_sets(1.0)
    for cls in classes:
        sums = {"cont": 0.0, "disc": 0.0, "vdd": 0.0, "inc": 0.0}
        base = WorkloadSpec(graph_class=cls, n_tasks=n_tasks, n_processors=4,
                            slack=slack, seed=seed)
        problems = workload_ensemble(base, repetitions=repetitions)
        for problem in problems:
            models = matching_models(1.0, n_modes, mode_sets=mode_sets)
            cont = solve_continuous(problem.with_model(models["continuous"]))
            lb = cont.energy
            disc = solve_discrete(problem.with_model(models["discrete"]), exact=False)
            vdd = solve_vdd_lp(problem.with_model(models["vdd"]))
            inc = solve_incremental_approx(problem.with_model(models["incremental"]))
            for s in (cont, disc, vdd, inc):
                check_solution(s)
            sums["cont"] += cont.energy
            sums["disc"] += disc.energy / lb
            sums["vdd"] += vdd.energy / lb
            sums["inc"] += inc.energy / lb
        k = float(len(problems))
        table.add_row(cls, sums["cont"] / k, sums["disc"] / k, sums["vdd"] / k,
                      sums["inc"] / k)
    return table


# --------------------------------------------------------------------------- #
# E9 — report-style table: energy reclaimed vs the no-reclaim baseline
# --------------------------------------------------------------------------- #
def experiment_e9_reclaiming_gain(*, n_tasks: int = 24, n_modes: int = 5,
                                  slacks: Sequence[float] = (1.2, 1.5, 2.0, 3.0),
                                  repetitions: int = 3, seed: int = 9) -> Table:
    """Fraction of the no-reclaim energy saved by each strategy.

    This is the paper's motivation quantified: how much energy does speed
    re-selection reclaim from a schedule that simply runs everything at
    ``s_max``?  Expected shape: savings grow roughly like ``1 - 1/slack**2``
    for the Continuous model and the other models follow it from below.
    """
    table = Table(
        columns=["slack", "no_reclaim_energy", "continuous_saving", "vdd_saving",
                 "discrete_saving", "incremental_saving", "uniform_saving"],
        title="E9 - energy reclaimed relative to the no-reclaim baseline",
    )
    mode_sets = standard_mode_sets(1.0)
    for slack in slacks:
        sums = {"base": 0.0, "cont": 0.0, "vdd": 0.0, "disc": 0.0, "inc": 0.0,
                "uniform": 0.0}
        base = WorkloadSpec(graph_class="layered", n_tasks=n_tasks, n_processors=4,
                            slack=slack, seed=seed)
        problems = workload_ensemble(base, repetitions=repetitions)
        for problem in problems:
            models = matching_models(1.0, n_modes, mode_sets=mode_sets)
            baseline = solve_no_reclaim(problem.with_model(models["discrete"]))
            cont = solve_continuous(problem.with_model(models["continuous"]))
            vdd = solve_vdd_lp(problem.with_model(models["vdd"]))
            disc = solve_discrete(problem.with_model(models["discrete"]), exact=False)
            inc = solve_incremental_approx(problem.with_model(models["incremental"]))
            uniform = solve_uniform_scaling(problem.with_model(models["discrete"]))
            for s in (baseline, cont, vdd, disc, inc, uniform):
                check_solution(s)
            sums["base"] += baseline.energy
            sums["cont"] += 1.0 - cont.energy / baseline.energy
            sums["vdd"] += 1.0 - vdd.energy / baseline.energy
            sums["disc"] += 1.0 - disc.energy / baseline.energy
            sums["inc"] += 1.0 - inc.energy / baseline.energy
            sums["uniform"] += 1.0 - uniform.energy / baseline.energy
        k = float(len(problems))
        table.add_row(slack, sums["base"] / k, sums["cont"] / k, sums["vdd"] / k,
                      sums["disc"] / k, sums["inc"] / k, sums["uniform"] / k)
    return table


# --------------------------------------------------------------------------- #
# E10 — scalability of the solvers
# --------------------------------------------------------------------------- #
def experiment_e10_scalability(*, sizes: Sequence[int] = (10, 20, 40, 80),
                               n_modes: int = 5, slack: float = 1.5,
                               seed: int = 10) -> Table:
    """Wall-clock solver time as a function of the task count.

    Expected shape: the SP/tree algorithms and the heuristics stay
    near-linear, the LP grows polynomially, and the convex solver dominates
    the cost for large non-SP graphs.
    """
    table = Table(
        columns=["n_tasks", "continuous_seconds", "vdd_lp_seconds",
                 "discrete_heuristic_seconds", "incremental_seconds"],
        title="E10 - solver wall-clock time vs instance size",
    )
    mode_sets = standard_mode_sets(1.0)
    rng = make_rng(seed)
    for n in sizes:
        spec = WorkloadSpec(graph_class="layered", n_tasks=n, n_processors=4,
                            slack=slack, seed=int(rng.integers(0, 2**31 - 1)))
        problem = make_workload(spec)
        models = matching_models(1.0, n_modes, mode_sets=mode_sets)
        timings = {}
        for label, build in (
            ("continuous", lambda: solve_continuous(problem.with_model(models["continuous"]))),
            ("vdd", lambda: solve_vdd_lp(problem.with_model(models["vdd"]))),
            ("discrete", lambda: solve_discrete(problem.with_model(models["discrete"]), exact=False)),
            ("incremental", lambda: solve_incremental_approx(problem.with_model(models["incremental"]))),
        ):
            start = time.perf_counter()
            solution = build()
            timings[label] = time.perf_counter() - start
            check_solution(solution)
        table.add_row(n, timings["continuous"], timings["vdd"], timings["discrete"],
                      timings["incremental"])
    return table


# --------------------------------------------------------------------------- #
# E10-SPARSE — sparse solver paths on large general DAGs
# --------------------------------------------------------------------------- #
def experiment_e10_sparse_scaling(*, sizes: Sequence[int] = (1000, 5000, 10_000),
                                  small_sizes: Sequence[int] = (40, 80, 160),
                                  n_modes: int = 5, slack: float = 1.5,
                                  seed: int = 10) -> Table:
    """Sparse vs dense solver paths on general (layered) DAGs.

    One row per size: the sparse interior-point Continuous solver
    (``convex-sparse``) and the incremental discrete heuristic run at every
    size; the dense ``gp-slsqp`` pipeline runs only at the ``small_sizes``
    where its O(n³) stages are affordable, giving the head-to-head rows.
    Expected shape: sparse beats dense at every overlapping size, and the
    1k/5k/10k rows — beyond the dense pipeline's historical task cap —
    complete in seconds.
    """
    from repro.continuous.sparse import solve_general_convex_sparse

    table = Table(
        columns=["n_tasks", "convex_sparse_seconds", "convex_sparse_energy",
                 "gp_slsqp_seconds", "gp_slsqp_energy", "dense_over_sparse",
                 "discrete_heuristic_seconds", "discrete_winner", "greedy_moves"],
        title="E10-SPARSE - sparse solver paths on large general DAGs",
    )
    mode_sets = standard_mode_sets(1.0)
    rng = make_rng(seed)
    for n in (*small_sizes, *sizes):
        spec = WorkloadSpec(graph_class="layered", n_tasks=n, n_processors=4,
                            slack=slack, seed=int(rng.integers(0, 2**31 - 1)))
        problem = make_workload(spec)
        models = matching_models(1.0, n_modes, mode_sets=mode_sets)
        continuous_problem = problem.with_model(models["continuous"])

        start = time.perf_counter()
        sparse_solution = solve_general_convex_sparse(continuous_problem)
        sparse_seconds = time.perf_counter() - start
        check_solution(sparse_solution)

        dense_seconds = None
        dense_energy = None
        ratio = None
        if n in small_sizes:
            start = time.perf_counter()
            dense_solution = solve_general_convex(continuous_problem)
            dense_seconds = time.perf_counter() - start
            check_solution(dense_solution)
            dense_energy = dense_solution.energy
            ratio = dense_seconds / sparse_seconds

        start = time.perf_counter()
        discrete_solution = solve_discrete_best_heuristic(
            problem.with_model(models["discrete"]))
        discrete_seconds = time.perf_counter() - start
        check_solution(discrete_solution)

        table.add_row(n, sparse_seconds, sparse_solution.energy,
                      dense_seconds, dense_energy, ratio,
                      discrete_seconds, discrete_solution.solver,
                      discrete_solution.metadata.get("moves_applied"))
    return table


# --------------------------------------------------------------------------- #
# E3-SCALE — the Vdd-Hopping LP at 10k tasks (sparse assembly)
# --------------------------------------------------------------------------- #
def experiment_e3_lp_scaling(*, sizes: Sequence[int] = (1000, 5000, 10_000),
                             n_modes: int = 5, slack: float = 1.5,
                             seed: int = 3) -> Table:
    """Sparse Vdd-Hopping LP assembly and solve times on large general DAGs.

    One row per size: CSR assembly time, HiGHS solve time, the actual
    constraint-matrix bytes next to what the former dense assembly would
    have allocated, and the process peak RSS after the solve.  Expected
    shape: assembly stays sub-second at 10k tasks with a memory ratio in
    the thousands (the dense equivalent would be >100 GB).
    """
    import resource

    table = Table(
        columns=["n_tasks", "assemble_seconds", "solve_seconds", "lp_energy",
                 "n_variables", "n_constraints", "sparse_mb",
                 "dense_equiv_mb", "memory_ratio", "peak_rss_mb"],
        title="E3-SCALE - sparse Vdd-Hopping LP at large task counts",
    )
    from repro.vdd.lp import build_vdd_lp

    mode_sets = standard_mode_sets(1.0)
    rng = make_rng(seed)
    for n in sizes:
        spec = WorkloadSpec(graph_class="layered", n_tasks=n, n_processors=4,
                            slack=slack, seed=int(rng.integers(0, 2**31 - 1)))
        problem = make_workload(spec)
        models = matching_models(1.0, n_modes, mode_sets=mode_sets)
        vdd_problem = problem.with_model(models["vdd"])

        start = time.perf_counter()
        lp = build_vdd_lp(vdd_problem)
        assemble_seconds = time.perf_counter() - start
        memory = lp.constraint_memory()

        # solve_vdd_lp re-assembles internally; subtract the measured
        # assembly time so the column reports the pure solve
        start = time.perf_counter()
        solution = solve_vdd_lp(vdd_problem)
        solve_seconds = max(time.perf_counter() - start - assemble_seconds, 0.0)
        check_solution(solution)

        peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        table.add_row(
            n, assemble_seconds, solve_seconds, solution.energy,
            solution.metadata["n_variables"], solution.metadata["n_constraints"],
            memory["sparse_bytes"] / 1e6, memory["dense_equivalent_bytes"] / 1e6,
            memory["dense_equivalent_bytes"] / max(memory["sparse_bytes"], 1),
            peak_rss_mb,
        )
    return table


# --------------------------------------------------------------------------- #
# SWEEP — batch sweep engine over (class, size, slack, alpha) grids
# --------------------------------------------------------------------------- #
def experiment_batch_sweep(*, graph_classes: Sequence[str] = ("chain", "fork", "tree",
                                                              "series_parallel", "layered"),
                           sizes: Sequence[int] = (16, 64),
                           slacks: Sequence[float] = (1.2, 2.0),
                           alphas: Sequence[float] = (3.0,),
                           model: str = "continuous", n_modes: int = 5,
                           s_max: float = 1.0,
                           repetitions: int = 2, seed: int = 11,
                           workers: int | None = None, chunk: int = 1,
                           cache=None, shard=None) -> Table:
    """Batch sweep over graph class / size / deadline / alpha grids.

    One row per solved instance (failures captured in the ``error`` column,
    result-cache hits flagged in the ``cache_hit`` column); the fan-out runs
    through :func:`repro.batch.solve_many`, so ``workers`` turns the sweep
    into a process-pool run and ``cache`` (a
    :class:`repro.cache.ResultCache`) makes repeated grids near-free.
    ``shard`` (``"I/N"`` or a :class:`repro.batch.ShardSpec`) restricts the
    run to one deterministic slice of the grid.  This is the driver behind
    the ``repro sweep`` CLI subcommand.
    """
    from repro.batch import sweep

    return sweep(graph_classes=graph_classes, sizes=sizes, slacks=slacks,
                 alphas=alphas, model=model, n_modes=n_modes, s_max=s_max,
                 repetitions=repetitions, seed=seed, workers=workers,
                 chunk=chunk, cache=cache, shard=shard,
                 title="SWEEP - batch sweep engine grid")


#: Registry used by the benchmark harness and the documentation generator.
EXPERIMENT_REGISTRY: dict[str, Callable[..., Table]] = {
    "E1": experiment_e1_fork_closed_form,
    "E2": experiment_e2_tree_sp,
    "E3": experiment_e3_vdd_lp,
    "E4": experiment_e4_discrete_exact,
    "E5": experiment_e5_incremental_approx,
    "E6": experiment_e6_modes_sweep,
    "E7": experiment_e7_deadline_sweep,
    "E8": experiment_e8_graph_classes,
    "E9": experiment_e9_reclaiming_gain,
    "E10": experiment_e10_scalability,
    "E10-SPARSE": experiment_e10_sparse_scaling,
    "E3-SCALE": experiment_e3_lp_scaling,
    "SWEEP": experiment_batch_sweep,
}
