"""Experiment harness.

The brief announcement contains no tables or figures, so the harness does
two things (see DESIGN.md, section 4):

1. it validates every theorem of the paper numerically (experiments E1-E5);
2. it regenerates the *shape* of the companion-report-style simulation
   study comparing the energy models (experiments E6-E10): energy ratios
   against the Continuous lower bound as functions of the number of modes,
   the deadline tightness, the graph class, and the gain over the
   no-reclamation baseline.

Each experiment has a driver function returning a
:class:`repro.utils.tables.Table`; the ``benchmarks/`` directory wraps each
driver in a pytest-benchmark target and prints the table, and
``EXPERIMENTS.md`` records the measured outcomes.
"""

from repro.experiments.workloads import (
    WorkloadSpec,
    make_workload,
    workload_ensemble,
    standard_mode_sets,
)
from repro.experiments.drivers import (
    experiment_e1_fork_closed_form,
    experiment_e2_tree_sp,
    experiment_e3_vdd_lp,
    experiment_e4_discrete_exact,
    experiment_e5_incremental_approx,
    experiment_e6_modes_sweep,
    experiment_e7_deadline_sweep,
    experiment_e8_graph_classes,
    experiment_e9_reclaiming_gain,
    experiment_e10_scalability,
    EXPERIMENT_REGISTRY,
)

__all__ = [
    "WorkloadSpec",
    "make_workload",
    "workload_ensemble",
    "standard_mode_sets",
    "experiment_e1_fork_closed_form",
    "experiment_e2_tree_sp",
    "experiment_e3_vdd_lp",
    "experiment_e4_discrete_exact",
    "experiment_e5_incremental_approx",
    "experiment_e6_modes_sweep",
    "experiment_e7_deadline_sweep",
    "experiment_e8_graph_classes",
    "experiment_e9_reclaiming_gain",
    "experiment_e10_scalability",
    "EXPERIMENT_REGISTRY",
]
