"""Workload construction for the experiment harness.

A *workload* is a ``MinEnergyProblem`` ready to be handed to the solvers:
a synthetic task graph, a mapping (which turns it into an execution graph),
an energy model, and a deadline expressed as a multiple of the minimum
achievable makespan (the deadline "slack factor").  Centralising the
construction here keeps every experiment comparable and reproducible (all
randomness flows from explicit seeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    EnergyModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.problem import MinEnergyProblem
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.graphs.taskgraph import TaskGraph
from repro.mapping.execution_graph import ExecutionGraph
from repro.mapping.list_scheduling import (
    list_schedule,
    load_balance_mapping,
    round_robin_mapping,
    single_processor_mapping,
)
from repro.utils.errors import InvalidModelError
from repro.utils.rng import spawn_rngs


def standard_mode_sets(s_max: float = 1.0) -> dict[int, tuple[float, ...]]:
    """Reference Discrete mode sets with 2..16 modes, normalised to ``s_max``.

    The modes are spread over ``[0.15 * s_max, s_max]`` with mild
    irregularity (denser near the top), mimicking published DVFS tables
    where high frequencies are closer together than low ones.
    """
    out: dict[int, tuple[float, ...]] = {}
    lo = 0.15 * s_max
    for m in (2, 3, 4, 5, 6, 8, 10, 12, 16):
        # quadratic spacing: denser near s_max
        modes = tuple(lo + (s_max - lo) * ((i / (m - 1)) ** 0.7) for i in range(m))
        out[m] = modes
    return out


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one workload.

    Attributes
    ----------
    graph_class:
        One of the keys of :data:`repro.graphs.generators.GRAPH_CLASSES`
        (``"chain"``, ``"fork"``, ``"tree"``, ``"series_parallel"``,
        ``"layered"``, ...).
    n_tasks:
        Number of tasks requested from the generator.
    n_processors:
        Number of processors for the mapping (``0`` means one task per
        processor — the execution graph equals the task graph).
    mapping:
        ``"list"``, ``"round_robin"``, ``"load_balance"``, ``"single"`` or
        ``"none"`` (one task per processor).
    slack:
        Deadline expressed as ``slack * minimum_makespan`` where the minimum
        makespan is the critical path at the reference maximum speed.
    s_max:
        Reference maximum speed used to compute the minimum makespan.
    seed:
        Seed of the generator.
    """

    graph_class: str = "layered"
    n_tasks: int = 30
    n_processors: int = 4
    mapping: str = "list"
    slack: float = 2.0
    s_max: float = 1.0
    seed: int = 0


def _build_graph(spec: WorkloadSpec) -> TaskGraph:
    builder = generators.GRAPH_CLASSES.get(spec.graph_class)
    if builder is None:
        raise InvalidModelError(
            f"unknown graph class {spec.graph_class!r}; "
            f"choose from {sorted(generators.GRAPH_CLASSES)}"
        )
    return builder(spec.n_tasks, seed=spec.seed)


def _build_execution(spec: WorkloadSpec, graph: TaskGraph) -> TaskGraph:
    if spec.mapping == "none" or spec.n_processors <= 0:
        return graph
    if spec.mapping == "list":
        execution = list_schedule(graph, spec.n_processors)
    elif spec.mapping == "round_robin":
        execution = round_robin_mapping(graph, spec.n_processors)
    elif spec.mapping == "load_balance":
        execution = load_balance_mapping(graph, spec.n_processors)
    elif spec.mapping == "single":
        execution = single_processor_mapping(graph)
    else:
        raise InvalidModelError(f"unknown mapping strategy {spec.mapping!r}")
    return execution.combined_graph()


def make_workload(spec: WorkloadSpec, model: EnergyModel | None = None) -> MinEnergyProblem:
    """Instantiate the ``MinEnergyProblem`` described by ``spec``.

    Parameters
    ----------
    spec:
        The workload description.
    model:
        Energy model of the problem; defaults to a Continuous model capped
        at ``spec.s_max``.  The deadline is ``spec.slack`` times the
        critical path of the *execution* graph at ``spec.s_max`` so that
        every model sharing that maximum speed gets the same absolute
        deadline.
    """
    graph = _build_graph(spec)
    execution_graph = _build_execution(spec, graph)
    model = model or ContinuousModel(s_max=spec.s_max)
    min_makespan = longest_path_length(
        execution_graph, weight=lambda n: execution_graph.work(n) / spec.s_max
    )
    deadline = spec.slack * min_makespan
    return MinEnergyProblem(
        graph=execution_graph, deadline=deadline, model=model,
        name=f"{spec.graph_class}(n={spec.n_tasks}, p={spec.n_processors}, "
             f"slack={spec.slack:g}, seed={spec.seed})",
    )


def workload_ensemble(base: WorkloadSpec, *, repetitions: int,
                      model: EnergyModel | None = None) -> list[MinEnergyProblem]:
    """A list of workloads differing only by their seed.

    Seeds are derived deterministically from ``base.seed`` so that an
    ensemble is reproducible from a single number.
    """
    rngs = spawn_rngs(base.seed, repetitions)
    problems = []
    for i, rng in enumerate(rngs):
        seed = int(rng.integers(0, 2**31 - 1))
        spec = WorkloadSpec(
            graph_class=base.graph_class, n_tasks=base.n_tasks,
            n_processors=base.n_processors, mapping=base.mapping,
            slack=base.slack, s_max=base.s_max, seed=seed,
        )
        problems.append(make_workload(spec, model=model))
    return problems


def matching_models(s_max: float, n_modes: int, *,
                    mode_sets: dict[int, tuple[float, ...]] | None = None
                    ) -> dict[str, EnergyModel]:
    """The four paper models sharing the same maximum speed.

    Returns a dictionary with keys ``"continuous"``, ``"discrete"``,
    ``"vdd"`` and ``"incremental"``; the Discrete and Vdd-Hopping models
    share the same (irregular) mode set and the Incremental model spans the
    same range with a regular grid of the same cardinality.
    """
    mode_sets = mode_sets or standard_mode_sets(s_max)
    if n_modes not in mode_sets:
        raise InvalidModelError(
            f"no standard mode set with {n_modes} modes; available: {sorted(mode_sets)}"
        )
    modes = mode_sets[n_modes]
    incremental = IncrementalModel.from_range(
        modes[0], modes[-1],
        (modes[-1] - modes[0]) / (n_modes - 1) if n_modes > 1 else modes[0],
    )
    return {
        "continuous": ContinuousModel(s_max=s_max),
        "discrete": DiscreteModel(modes=modes),
        "vdd": VddHoppingModel(modes=modes),
        "incremental": incremental,
    }
