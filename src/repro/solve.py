"""Top-level solver dispatch through the :class:`SolverRegistry`.

``solve(problem)`` resolves the problem's energy model to a registered
solver backend and calls it with validated options:

* :class:`ContinuousModel`   → methods ``auto`` (default), ``closed-form``,
  ``tree``, ``series-parallel``, ``gp-slsqp`` (alias ``convex``),
  ``convex-sparse`` (aliases ``sparse``, ``ipm``);
* :class:`VddHoppingModel`   → methods ``lp`` (default) and ``mixing``;
* :class:`DiscreteModel`     → methods ``auto`` (default), ``exact``,
  ``heuristic``;
* :class:`IncrementalModel`  → methods ``theorem5`` (default, alias
  ``approx``) and ``exact``.

Unknown methods raise :class:`~repro.utils.errors.UnknownSolverError` and
undeclared or ill-typed options raise
:class:`~repro.utils.errors.UnknownOptionError` /
:class:`~repro.utils.errors.InvalidOptionError` — nothing is silently
swallowed any more.  The legacy call shapes keep working: ``solve(problem)``,
``solve(problem, exact=True)`` for the NP-complete models, and extra
keyword arguments such as ``backend="simplex"`` or ``k=10`` are folded into
``options`` (and validated).

Passing a :class:`repro.cache.ResultCache` as ``cache=`` makes the call
content-addressed: the request's
:meth:`~repro.core.problem.MinEnergyProblem.cache_key` is looked up first
and a hit is rebuilt into a full :class:`Solution` (with
``metadata["cache_hit"] = True``) without running the solver.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.models import (
    ContinuousModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.problem import MinEnergyProblem
from repro.core.registry import REGISTRY, SolverBackend
from repro.core.solution import Solution
from repro.utils.errors import InvalidModelError, InvalidOptionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ResultCache

_BACKENDS_LOADED = False


def ensure_backends_loaded() -> None:
    """Import the four solver packages so their backends are registered.

    Importing a solver module runs its ``@REGISTRY.register`` decorators;
    this is the single place that triggers those imports, keeping
    ``repro.core`` free of dependencies on the solver packages.
    """
    global _BACKENDS_LOADED
    if _BACKENDS_LOADED:
        return
    import repro.continuous.solve    # noqa: F401
    import repro.discrete.solve      # noqa: F401
    import repro.incremental.approx  # noqa: F401
    import repro.vdd.solve           # noqa: F401
    _BACKENDS_LOADED = True


def resolve_backend(problem: MinEnergyProblem, method: str | None = None,
                    *, exact: bool | None = None) -> SolverBackend:
    """Resolve the backend a ``solve`` call would use (without calling it).

    Applies the same legacy-``exact`` routing as :func:`solve`: for the
    NP-complete models ``exact=True`` with no explicit method selects the
    ``exact`` backend, and for the polynomial models it raises.
    """
    ensure_backends_loaded()
    model = problem.model
    if exact is True and isinstance(model, (ContinuousModel, VddHoppingModel)):
        raise InvalidModelError(
            f"exact=True is contradictory for the polynomial {model.name!r} "
            "model: its default algorithms are already exact; drop the flag "
            "(or pick a method explicitly)"
        )
    if isinstance(model, IncrementalModel) and method is None and exact is True:
        method = "exact"
    backend = REGISTRY.resolve(model.name, method)
    if exact is True and not backend.supports_exact and backend.method != "exact":
        raise InvalidOptionError(
            f"exact=True conflicts with method={backend.method!r} of the "
            f"{model.name!r} model (use method='exact' or drop the flag)"
        )
    return backend


def solve(problem: MinEnergyProblem, *, method: str | None = None,
          options: dict[str, Any] | None = None,
          exact: bool | None = None,
          cache: "ResultCache | None" = None,
          **kwargs: Any) -> Solution:
    """Solve a ``MinEnergy(G, D)`` instance through the solver registry.

    Parameters
    ----------
    problem:
        The instance to solve.
    method:
        Name of a registered backend of the problem's energy model, or
        ``None`` for the model's default.  Unknown names raise
        :class:`~repro.utils.errors.UnknownSolverError`.
    options:
        Backend options, validated against the backend's declared schema
        (undeclared names raise
        :class:`~repro.utils.errors.UnknownOptionError`).
    exact:
        Legacy tri-state for the NP-complete models (Discrete,
        Incremental): force exact resolution (``True``), force the
        polynomial approximation/heuristics (``False``), or let the
        dispatcher decide (``None``).  ``exact=True`` with a polynomial
        model (Continuous, Vdd-Hopping) raises
        :class:`~repro.utils.errors.InvalidModelError` instead of being
        ignored.
    cache:
        Optional :class:`repro.cache.ResultCache`; hits skip the solver and
        return a rebuilt solution with ``metadata["cache_hit"] = True``.
    **kwargs:
        Legacy spelling of ``options`` (e.g. ``backend="simplex"``,
        ``k=10``); merged into ``options`` and validated the same way.

    Returns
    -------
    Solution
        A validated, feasible solution for the requested model.
    """
    backend = resolve_backend(problem, method, exact=exact)

    opts = dict(options or {})
    for key, value in kwargs.items():
        if key in opts and opts[key] != value:
            raise InvalidOptionError(
                f"option {key!r} passed both in options= ({opts[key]!r}) and "
                f"as a keyword ({value!r})"
            )
        opts[key] = value
    clean = backend.validate_options(opts)
    call_options = dict(clean)
    if backend.supports_exact:
        call_options["exact"] = exact

    if cache is not None:
        key = request_cache_key(problem, backend, clean, exact)
        envelope = cache.get(key)
        if envelope is not None:
            from repro.cache import solution_from_envelope

            return solution_from_envelope(problem, envelope)
        solution = backend.fn(problem, **call_options)
        from repro.cache import solution_envelope

        cache.put(key, solution_envelope(solution))
        solution.metadata.setdefault("cache_hit", False)
        return solution

    return backend.fn(problem, **call_options)


def request_cache_key(problem: MinEnergyProblem, backend: SolverBackend,
                      options: dict[str, Any], exact: bool | None) -> str:
    """Cache key of a solve request given its resolved backend.

    The single place the ``(method, options, exact)`` triple is folded into
    :meth:`MinEnergyProblem.cache_key` — every cache consumer (direct
    ``solve``, the batch fan-out, the service) must compose keys through
    here so identical requests can never produce mismatched keys.
    """
    return problem.cache_key(
        method=backend.method, options=options,
        exact=exact if backend.supports_exact else None)


def cache_key_for(problem: MinEnergyProblem, method: str | None = None, *,
                  options: dict[str, Any] | None = None,
                  exact: bool | None = None) -> str:
    """Resolve and validate a request, then return its cache key.

    Raises exactly what the eventual :func:`solve` call would raise for a
    bad method/option/exact combination, so callers that pre-resolve cache
    hits (batch, service) can turn those errors into per-instance failures.
    """
    backend = resolve_backend(problem, method, exact=exact)
    clean = backend.validate_options(options or {})
    return request_cache_key(problem, backend, clean, exact)


def solver_methods(problem_or_model: "MinEnergyProblem | str") -> list[str]:
    """Registered method names for a problem's model (default first)."""
    ensure_backends_loaded()
    if isinstance(problem_or_model, MinEnergyProblem):
        model_name = problem_or_model.model.name
    else:
        model_name = problem_or_model
    return REGISTRY.methods(model_name)
