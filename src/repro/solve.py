"""Top-level solver dispatch.

``solve(problem)`` inspects the problem's energy model and calls the
appropriate solver:

* :class:`ContinuousModel`   → :func:`repro.continuous.solve_continuous`
  (closed forms, Theorem 2 algorithms, or the convex program);
* :class:`VddHoppingModel`   → :func:`repro.vdd.solve_vdd_hopping`
  (the Theorem 3 linear program);
* :class:`IncrementalModel`  → :func:`repro.incremental.solve_incremental_approx`
  by default (Theorem 5), or the exact Discrete machinery with
  ``exact=True``;
* :class:`DiscreteModel`     → :func:`repro.discrete.solve_discrete`
  (exact for small/structured instances, heuristics otherwise).
"""

from __future__ import annotations

from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.problem import MinEnergyProblem
from repro.core.solution import Solution
from repro.utils.errors import InvalidModelError


def solve(problem: MinEnergyProblem, *, exact: bool | None = None, **kwargs) -> Solution:
    """Solve a ``MinEnergy(G, D)`` instance with the model-appropriate algorithm.

    Parameters
    ----------
    problem:
        The instance to solve.
    exact:
        For the NP-complete models (Discrete, Incremental): force exact
        resolution (``True``), force the polynomial approximation/heuristics
        (``False``), or let the dispatcher decide (``None``, default).
        Ignored for the polynomial models.
    **kwargs:
        Extra options forwarded to the model-specific solver (for example
        ``backend="simplex"`` for Vdd-Hopping or ``k=10`` for the
        Incremental approximation).

    Returns
    -------
    Solution
        A validated, feasible solution for the requested model.
    """
    from repro.continuous.solve import solve_continuous
    from repro.discrete.solve import solve_discrete
    from repro.incremental.approx import solve_incremental_approx, solve_incremental_exact
    from repro.vdd.solve import solve_vdd_hopping

    model = problem.model
    if isinstance(model, ContinuousModel):
        return solve_continuous(problem, **kwargs)
    if isinstance(model, VddHoppingModel):
        return solve_vdd_hopping(problem, **kwargs)
    if isinstance(model, IncrementalModel):
        if exact:
            return solve_incremental_exact(problem, **kwargs)
        return solve_incremental_approx(problem, **kwargs)
    if isinstance(model, DiscreteModel):
        return solve_discrete(problem, exact=exact, **kwargs)
    raise InvalidModelError(f"no solver registered for energy model {model.name!r}")
