"""End-to-end reliability policies: retries, deadlines, circuit breaking.

Three cooperating pieces, all transport-agnostic:

:class:`RetryPolicy`
    Budgeted exponential full-jitter retries over the shared
    :func:`repro.api.client.backoff_intervals` schedule.  Only
    :class:`~repro.utils.errors.TransientTransportError` (and subclasses:
    overload shedding, server drain, injected faults) is retryable;
    everything else propagates immediately.  A non-idempotent call
    (``idempotent=False``) additionally requires ``maybe_executed`` to be
    ``False`` — a job submission that *might* have reached the server is
    never blindly re-sent.

:class:`Deadline`
    A monotonic-clock budget propagated client -> server in the
    ``X-Repro-Deadline`` header as *seconds remaining* (never as wall-clock
    time, so clock skew between machines cannot corrupt it).  The active
    deadline travels through a :mod:`contextvars` scope
    (:func:`deadline_scope` / :func:`current_deadline`) so the HTTP
    transport stamps it onto every request without per-call plumbing.

:class:`CircuitBreaker`
    Consecutive connection-level failures trip the breaker open; while
    open every call fails fast with a typed
    :class:`~repro.utils.errors.CircuitOpenError` instead of burning its
    full retry budget against a dead server.  After ``reset_seconds`` one
    half-open probe is let through; its outcome closes or re-opens the
    circuit.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import random
import time
from typing import Any, Callable, Iterator, TypeVar

from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidParameterError,
    TransientTransportError,
)

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
    "is_retryable",
]

T = TypeVar("T")

#: Header carrying the request's remaining deadline budget in seconds.
DEADLINE_HEADER = "X-Repro-Deadline"

#: Environment defaults consumed by :meth:`RetryPolicy.from_env` and the CLI.
RETRIES_ENV = "REPRO_RETRIES"
DEADLINE_ENV = "REPRO_DEADLINE"


def is_retryable(exc: BaseException, *, idempotent: bool = True) -> bool:
    """Whether the retry layer may re-issue the call that raised ``exc``.

    Transient transport failures are retryable; for a non-idempotent call
    the failure must additionally be provably pre-execution
    (``maybe_executed`` false — connection refused, load shedding,
    client-side injected faults), so a submission that may have landed is
    never duplicated.
    """
    if not isinstance(exc, TransientTransportError):
        return False
    if idempotent:
        return True
    return not getattr(exc, "maybe_executed", True)


# --------------------------------------------------------------------- #
# deadlines
# --------------------------------------------------------------------- #
class Deadline:
    """A monotonic-clock completion budget.

    Constructed with :meth:`after` (``seconds`` from now) or
    :meth:`from_header` (the budget a client sent); queried with
    :meth:`remaining` / :attr:`expired`; enforced with :meth:`require`,
    which raises the typed
    :class:`~repro.utils.errors.DeadlineExceededError`.
    """

    __slots__ = ("_at", "budget")

    def __init__(self, at: float, *, budget: float) -> None:
        self._at = at
        self.budget = budget

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        if seconds <= 0:
            raise InvalidParameterError(f"a deadline must be > 0 seconds, got {seconds}")
        return cls(time.monotonic() + seconds, budget=seconds)

    def remaining(self) -> float:
        """Seconds of budget left (clamped at 0)."""
        return max(0.0, self._at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._at

    def require(self, what: str = "request") -> "Deadline":
        """Raise the typed error if the budget is spent; chainable."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} deadline exceeded ({self.budget:.3f}s budget spent)")
        return self

    def to_header(self) -> str:
        """The wire form: seconds remaining at send time."""
        return f"{self.remaining():.3f}"

    @classmethod
    def from_header(cls, value: str) -> "Deadline | None":
        """Parse an ``X-Repro-Deadline`` header; garbage returns ``None``
        (a malformed deadline must not break an otherwise-valid request)."""
        try:
            seconds = float(str(value).strip())
        except (TypeError, ValueError):
            return None
        if seconds <= 0:  # already expired when sent
            return cls(time.monotonic(), budget=max(seconds, 0.0))
        return cls.after(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


_CURRENT_DEADLINE: contextvars.ContextVar["Deadline | None"] = \
    contextvars.ContextVar("repro_deadline", default=None)


def current_deadline() -> "Deadline | None":
    """The deadline of the enclosing :func:`deadline_scope`, if any."""
    return _CURRENT_DEADLINE.get()


@contextlib.contextmanager
def deadline_scope(deadline: "Deadline | None") -> Iterator["Deadline | None"]:
    """Make ``deadline`` the ambient deadline of the enclosed calls.

    The HTTP transport reads it via :func:`current_deadline` and stamps
    the remaining budget onto every outgoing request; ``None`` scopes are
    pass-through so call sites need no conditional.
    """
    token = _CURRENT_DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT_DEADLINE.reset(token)


# --------------------------------------------------------------------- #
# retries
# --------------------------------------------------------------------- #
class RetryPolicy:
    """Budgeted exponential full-jitter retries for transient failures.

    Parameters
    ----------
    retries:
        Retry attempts *after* the first call (0 = never retry).
    initial / factor / maximum:
        The exponential backoff schedule, shared with every polling path
        via :func:`repro.api.client.backoff_intervals`.
    jitter:
        Downward jitter fraction in ``[0, 1]``; 1.0 (the default) is AWS
        full jitter, so a fleet of retriers decorrelates.
    budget:
        Optional cap on *cumulative sleep seconds* across the retries of
        one call — a hard bound on how long a caller can be stalled by
        backoff regardless of ``retries``.
    rng:
        Seedable RNG for reproducible jitter in tests.
    """

    def __init__(self, retries: int = 2, *, initial: float = 0.05,
                 factor: float = 2.0, maximum: float = 2.0,
                 jitter: float = 1.0, budget: float | None = None,
                 rng: "random.Random | None" = None) -> None:
        if retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {retries}")
        if budget is not None and budget <= 0:
            raise InvalidParameterError(f"budget must be > 0 seconds, got {budget}")
        self.retries = retries
        self.initial = initial
        self.factor = factor
        self.maximum = maximum
        self.jitter = jitter
        self.budget = budget
        self._rng = rng

    @classmethod
    def from_env(cls, *, default_retries: int = 0,
                 **kwargs: Any) -> "RetryPolicy":
        """A policy whose retry count defaults from ``REPRO_RETRIES``."""
        raw = os.environ.get(RETRIES_ENV, "").strip()
        retries = default_retries
        if raw:
            try:
                retries = int(raw)
            except ValueError:
                raise InvalidParameterError(
                    f"{RETRIES_ENV} must be an integer, got {raw!r}"
                ) from None
        return cls(max(0, retries), **kwargs)

    def sleeps(self) -> Iterator[float]:
        """The jittered backoff schedule (one interval per retry)."""
        from repro.api.client import backoff_intervals

        return backoff_intervals(self.initial, factor=self.factor,
                                 maximum=self.maximum, jitter=self.jitter,
                                 rng=self._rng)

    def call(self, fn: Callable[[], T], *, idempotent: bool = True,
             deadline: "Deadline | None" = None,
             on_retry: "Callable[[BaseException, int], None] | None" = None
             ) -> T:
        """Run ``fn``, retrying transient failures within the budget.

        A failure is retried when :func:`is_retryable` accepts it (given
        ``idempotent``), attempts remain, the cumulative-sleep ``budget``
        is not spent, and ``deadline`` (if any) has room for the next
        backoff sleep.  The sleep before each retry honours an
        :class:`~repro.utils.errors.OverloadedError`'s ``retry_after`` as
        a floor.  The last failure propagates unchanged.
        """
        slept = 0.0
        schedule = self.sleeps()
        for attempt in range(self.retries + 1):
            if deadline is not None:
                deadline.require("call")
            try:
                return fn()
            except BaseException as exc:
                if attempt >= self.retries \
                        or not is_retryable(exc, idempotent=idempotent):
                    raise
                interval = next(schedule)
                retry_after = getattr(exc, "retry_after", None)
                if retry_after:
                    interval = max(interval, float(retry_after))
                if self.budget is not None \
                        and slept + interval > self.budget:
                    raise
                if deadline is not None \
                        and interval >= deadline.remaining():
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt + 1)
                time.sleep(interval)
                slept += interval
        raise AssertionError("unreachable")  # pragma: no cover


# --------------------------------------------------------------------- #
# circuit breaking
# --------------------------------------------------------------------- #
class CircuitBreaker:
    """Fail fast once the backend has proven itself unreachable.

    Closed (normal) -> open after ``failure_threshold`` *consecutive*
    recorded failures; while open, :meth:`allow` raises
    :class:`~repro.utils.errors.CircuitOpenError` without any I/O.  After
    ``reset_seconds`` the next :meth:`allow` admits exactly one half-open
    probe; :meth:`record_success` closes the circuit,
    :meth:`record_failure` re-opens it for another cooldown.
    """

    def __init__(self, *, failure_threshold: int = 5,
                 reset_seconds: float = 5.0) -> None:
        if failure_threshold < 1:
            raise InvalidParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_seconds <= 0:
            raise InvalidParameterError(
                f"reset_seconds must be > 0, got {reset_seconds}")
        import threading

        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if time.monotonic() - self._opened_at >= self.reset_seconds:
                return "half-open"
            return "open"

    def allow(self, *, what: str = "request") -> None:
        """Gate one call: pass when closed, admit one probe when half-open,
        raise :class:`CircuitOpenError` when open."""
        with self._lock:
            if self._opened_at is None:
                return
            waited = time.monotonic() - self._opened_at
            if waited >= self.reset_seconds and not self._probing:
                self._probing = True  # this caller is the half-open probe
                return
            raise CircuitOpenError(
                f"circuit breaker is open ({self._failures} consecutive "
                f"failures; {what} refused, next probe in "
                f"{max(0.0, self.reset_seconds - waited):.1f}s)")

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.failure_threshold:
                self._opened_at = time.monotonic()
