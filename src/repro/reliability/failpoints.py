"""Deterministic failpoint injection for chaos testing.

A **failpoint** is a named site in the codebase where a test (or the
``REPRO_FAILPOINTS`` environment variable) can arm a deterministic fault
plan.  The instrumented sites call :func:`fire` with their site name; when
nothing is armed the call is a single module-global boolean check — the
production no-op branch — and when a plan is armed the site deterministically
raises, sleeps, or asks the caller to corrupt its effect.

Instrumented sites (grep for ``failpoints.fire``):

===================  ========================================================
``jobstore.write``   before every :meth:`repro.api.jobstore.JobStore` record
                     write (create / transition / update / claim / renew)
``http.request``     before :class:`repro.api.HTTPTransport` sends a request
``http.stream``      per line read of the chunked ``/events`` stream
``worker.heartbeat`` before a runner's lease-renewing progress heartbeat
``batcher.tick``     before a :class:`~repro.service.batcher.MicroBatcher`
                     tick executes its batch
===================  ========================================================

Fault plans (:class:`FailPlan`) fire on a deterministic subset of a site's
hits, so a chaos run is exactly reproducible:

``raise``
    Raise :class:`~repro.utils.errors.InjectedFaultError` (a retryable
    :class:`~repro.utils.errors.TransientTransportError`).
``latency``
    Sleep ``param`` seconds, then continue normally.
``torn``
    Return the action string ``"torn"`` — the site implements its own
    torn-effect semantics (the job store writes a truncated temp file and
    raises, proving the atomic-replace contract).
``garbage``
    Return ``"garbage"`` — the site substitutes garbage for its payload
    (the HTTP transport corrupts the response body it just read).
``flaky``
    Raise with probability ``param`` per hit, drawn from a
    ``random.Random(seed)`` — probabilistic in shape, bit-reproducible in
    fact.

The environment spec (``REPRO_FAILPOINTS``) is a comma- or
semicolon-separated list of ``site=mode`` entries with optional decorations::

    REPRO_FAILPOINTS="http.request=raise*2,jobstore.write=torn*1~3"
                               |        |  |                    |
                               mode ----+  +-- fire on 2 hits   +-- skip 3 first

Grammar per entry: ``site=mode[:param][*times][~skip][@seed]`` — ``times``
(default 1) hits fire after ``skip`` (default 0) hits pass; ``param`` is the
latency seconds or flaky probability; ``seed`` seeds the flaky RNG.  The
module arms itself from the environment at import time, so a ``repro serve``
or ``repro work`` subprocess started with the variable set is born armed.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.utils.errors import FailpointSpecError, InjectedFaultError

__all__ = [
    "FailPlan",
    "FailpointSpecError",
    "SITES",
    "active",
    "arm",
    "arm_spec",
    "armed",
    "disarm",
    "fire",
    "reset",
    "stats",
]

#: Modes a plan may use (see the module docstring).
MODES = ("raise", "latency", "torn", "garbage", "flaky")

#: Modes whose ``fire`` returns an action string for the site to implement.
_ACTION_MODES = ("torn", "garbage")

#: The failpoint site registry: the machine-readable twin of the site
#: table in the module docstring.  ``repro lint`` (rule
#: ``failpoint-registry``) checks both directions against the codebase —
#: every ``fire("<site>")`` literal must name a member, and every member
#: must be fired somewhere — so an instrumented site can neither be
#: misspelled nor silently dropped.
SITES: frozenset[str] = frozenset({
    "jobstore.write",
    "http.request",
    "http.stream",
    "worker.heartbeat",
    "batcher.tick",
})


@dataclass
class FailPlan:
    """One armed fault plan: which hits of a site fire, and how.

    ``times`` hits fire after the first ``skip`` hits pass through; a
    ``when`` mapping restricts firing to calls whose context matches every
    key (e.g. ``when={"worker": "w1"}`` freezes only one worker's writes).
    """

    mode: str = "raise"
    times: int = 1
    skip: int = 0
    param: float | None = None
    seed: int = 0
    when: dict[str, Any] | None = None
    # mutable counters (guarded by the registry lock)
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)
    _rng: random.Random | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise FailpointSpecError(
                f"unknown failpoint mode {self.mode!r}; choose from "
                f"{', '.join(MODES)}")
        if self.times < 1:
            raise FailpointSpecError(
                f"a fail plan must fire at least once, got times={self.times}")
        if self.skip < 0:
            raise FailpointSpecError(
                f"skip must be >= 0, got {self.skip}")
        if self.mode == "latency" and (self.param is None or self.param < 0):
            raise FailpointSpecError(
                "latency plans need a non-negative seconds param "
                "(site=latency:0.05)")
        if self.mode == "flaky":
            p = self.param
            if p is None or not 0.0 < p <= 1.0:
                raise FailpointSpecError(
                    "flaky plans need a probability param in (0, 1] "
                    "(site=flaky:0.5)")
            self._rng = random.Random(self.seed)

    def matches(self, context: dict[str, Any]) -> bool:
        if not self.when:
            return True
        return all(context.get(k) == v for k, v in self.when.items())

    def should_fire(self) -> bool:
        """Advance the hit counter; decide whether this hit fires."""
        self.hits += 1
        if self.fired >= self.times:
            return False
        if self.hits <= self.skip:
            return False
        if self.mode == "flaky":
            # the RNG advances on every eligible hit, so the firing
            # pattern is a pure function of (seed, hit sequence)
            if self._rng.random() >= float(self.param):  # type: ignore[union-attr]
                return False
        self.fired += 1
        return True


class _Registry:
    """Process-global registry of armed plans (one plan per site)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: dict[str, FailPlan] = {}

    def arm(self, site: str, plan: FailPlan) -> None:
        if not site or "=" in site:
            raise FailpointSpecError(f"invalid failpoint site {site!r}")
        with self._lock:
            self._plans[site] = plan
            _set_active(bool(self._plans))

    def disarm(self, site: str) -> None:
        with self._lock:
            self._plans.pop(site, None)
            _set_active(bool(self._plans))

    def reset(self) -> None:
        with self._lock:
            self._plans.clear()
            _set_active(False)

    def plan(self, site: str) -> FailPlan | None:
        with self._lock:
            return self._plans.get(site)

    def decide(self, site: str,
               context: dict[str, Any]) -> tuple[str, FailPlan] | None:
        """The armed action for this hit, or ``None`` (pass through)."""
        with self._lock:
            plan = self._plans.get(site)
            if plan is None or not plan.matches(context):
                return None
            if not plan.should_fire():
                return None
            return plan.mode, plan

    def stats(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            return {site: {"mode": p.mode, "hits": p.hits, "fired": p.fired,
                           "times": p.times, "skip": p.skip}
                    for site, p in self._plans.items()}


_REGISTRY = _Registry()

#: Fast-path flag: ``fire`` returns immediately while nothing is armed.
_ACTIVE = False


def _set_active(value: bool) -> None:
    global _ACTIVE
    _ACTIVE = value


def active() -> bool:
    """Whether any failpoint is currently armed (the production answer: no)."""
    return _ACTIVE


def arm(site: str, mode: str = "raise", *, times: int = 1, skip: int = 0,
        param: float | None = None, seed: int = 0,
        when: dict[str, Any] | None = None) -> FailPlan:
    """Arm ``site`` with a fault plan; returns the live plan (its counters
    update as the site is hit, so tests can assert ``plan.fired``)."""
    plan = FailPlan(mode=mode, times=times, skip=skip, param=param,
                    seed=seed, when=dict(when) if when else None)
    _REGISTRY.arm(site, plan)
    return plan


def disarm(site: str) -> None:
    """Remove ``site``'s plan (a no-op when nothing is armed there)."""
    _REGISTRY.disarm(site)


def reset() -> None:
    """Disarm every site and clear all counters."""
    _REGISTRY.reset()


def stats() -> dict[str, dict[str, Any]]:
    """Per-site hit/fired counters of the armed plans (for assertions)."""
    return _REGISTRY.stats()


class armed:
    """Context manager: arm a site for the duration of a ``with`` block.

    >>> with armed("jobstore.write", "raise", times=2) as plan:
    ...     ...  # the first two job-store writes raise InjectedFaultError
    >>> plan.fired
    2
    """

    def __init__(self, site: str, mode: str = "raise", **kwargs: Any) -> None:
        self._site = site
        self._mode = mode
        self._kwargs = kwargs

    def __enter__(self) -> FailPlan:
        self._plan = arm(self._site, self._mode, **self._kwargs)
        return self._plan

    def __exit__(self, exc_type, exc, tb) -> None:
        disarm(self._site)


def fire(site: str, **context: Any) -> str | None:
    """The instrumented-site hook: act out ``site``'s armed plan, if any.

    Returns ``None`` (continue normally), raises
    :class:`~repro.utils.errors.InjectedFaultError` (``raise``/``flaky``
    modes), sleeps then returns ``None`` (``latency``), or returns the
    action string ``"torn"``/``"garbage"`` for the caller to implement.
    When nothing is armed this is one global-boolean check.
    """
    if not _ACTIVE:
        return None
    decision = _REGISTRY.decide(site, context)
    if decision is None:
        return None
    mode, plan = decision
    if mode in _ACTION_MODES:
        return mode
    if mode == "latency":
        time.sleep(float(plan.param or 0.0))
        return None
    raise InjectedFaultError(
        f"failpoint {site!r} injected fault "
        f"{plan.fired}/{plan.times} (hit {plan.hits})")


# --------------------------------------------------------------------- #
# the REPRO_FAILPOINTS spec
# --------------------------------------------------------------------- #
def _parse_entry(entry: str) -> tuple[str, FailPlan]:
    text = entry.strip()
    if "=" not in text:
        raise FailpointSpecError(
            f"failpoint entry {entry!r} is not of the form site=mode"
            "[:param][*times][~skip][@seed]")
    site, _, rest = text.partition("=")
    site = site.strip()
    rest = rest.strip()
    if not site or not rest:
        raise FailpointSpecError(f"failpoint entry {entry!r} is incomplete")

    def split_tail(text: str, marker: str) -> tuple[str, str | None]:
        head, sep, tail = text.partition(marker)
        return head, (tail if sep else None)

    rest, seed_text = split_tail(rest, "@")
    rest, skip_text = split_tail(rest, "~")
    rest, times_text = split_tail(rest, "*")
    mode, param_text = split_tail(rest, ":")
    try:
        times = int(times_text) if times_text is not None else 1
        skip = int(skip_text) if skip_text is not None else 0
        seed = int(seed_text) if seed_text is not None else 0
        param = float(param_text) if param_text is not None else None
    except ValueError as exc:
        raise FailpointSpecError(
            f"failpoint entry {entry!r} has a non-numeric decoration: {exc}"
        ) from None
    return site, FailPlan(mode=mode.strip(), times=times, skip=skip,
                          param=param, seed=seed)


def _iter_entries(spec: str) -> Iterator[str]:
    for chunk in spec.replace(";", ",").split(","):
        if chunk.strip():
            yield chunk


def arm_spec(spec: str) -> dict[str, FailPlan]:
    """Arm every entry of a ``REPRO_FAILPOINTS``-style spec string."""
    plans: dict[str, FailPlan] = {}
    for entry in _iter_entries(spec):
        site, plan = _parse_entry(entry)
        plans[site] = plan
    # validate the whole spec before arming any of it
    for site, plan in plans.items():
        _REGISTRY.arm(site, plan)
    return plans


def arm_from_env(env_var: str = "REPRO_FAILPOINTS") -> dict[str, FailPlan]:
    """Arm from the environment (called once at import); empty spec = no-op."""
    spec = os.environ.get(env_var, "").strip()
    if not spec:
        return {}
    return arm_spec(spec)


arm_from_env()
