"""Reliability layer: failpoint injection and retry/deadline/breaker policies.

Two halves:

:mod:`repro.reliability.failpoints`
    Deterministic fault injection at named sites (``jobstore.write``,
    ``http.request``, ``http.stream``, ``worker.heartbeat``,
    ``batcher.tick``), armable by tests or the ``REPRO_FAILPOINTS``
    environment spec.  Disarmed sites cost one module-global boolean check.

:mod:`repro.reliability.policy`
    :class:`RetryPolicy` (budgeted exponential full-jitter retries),
    :class:`Deadline` (monotonic budgets propagated in the
    ``X-Repro-Deadline`` header), and :class:`CircuitBreaker` (fail fast
    against a dead backend with a typed
    :class:`~repro.utils.errors.CircuitOpenError`).
"""

from repro.reliability import failpoints
from repro.reliability.failpoints import FailpointSpecError
from repro.reliability.policy import (
    DEADLINE_ENV,
    DEADLINE_HEADER,
    RETRIES_ENV,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    current_deadline,
    deadline_scope,
    is_retryable,
)

__all__ = [
    "DEADLINE_ENV",
    "DEADLINE_HEADER",
    "RETRIES_ENV",
    "CircuitBreaker",
    "Deadline",
    "FailpointSpecError",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
    "failpoints",
    "is_retryable",
]
