"""Sparse/incremental large-n paths: equivalence and regression suites.

PR 4 acceptance tests: the sparse Vdd LP assembly equals the dense one,
the ``convex-sparse`` interior point matches the dense SLSQP objective,
``GraphIndex.asap_update`` cone repairs equal full recomputes, the
incremental greedy reproduces the classical rescan loop move for move,
and the calibrated shard priors fit measured timings.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.batch.shard import estimate_cost, priors_from_rows
from repro.continuous.general import solve_general_convex
from repro.continuous.solve import SPARSE_DISPATCH_THRESHOLD, solve_continuous
from repro.continuous.sparse import (
    build_sparse_constraints,
    prune_redundant_edges,
    solve_general_convex_sparse,
)
from repro.core.models import ContinuousModel, DiscreteModel, VddHoppingModel
from repro.core.power import PowerLaw
from repro.core.problem import MinEnergyProblem
from repro.core.solution import asap_times, compute_makespan
from repro.core.validation import check_solution
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.solve import solve
from repro.utils.errors import SolverError, UnknownOptionError
from repro.utils.numerics import leq_with_tol
from repro.utils.tables import Table
from repro.vdd.lp import SIMPLEX_MAX_VARIABLES, build_vdd_lp, solve_vdd_lp


def _problem(graph, slack=1.5, alpha=3.0, s_max=1.0, model=None):
    deadline = slack * longest_path_length(
        graph, weight=lambda n: graph.work(n) / (s_max if math.isfinite(s_max) else 1.0))
    return MinEnergyProblem(
        graph=graph, deadline=deadline,
        model=model or ContinuousModel(s_max=s_max),
        power=PowerLaw(alpha=alpha))


# --------------------------------------------------------------------------- #
# sparse LP assembly == dense assembly
# --------------------------------------------------------------------------- #
class TestSparseVddLP:
    def _dense_reference(self, problem):
        """The former dense assembly, row semantics unchanged."""
        graph = problem.graph
        idx = graph.index()
        names = list(idx.names)
        n = len(names)
        modes = problem.model.modes
        m = len(modes)
        n_vars = n * m + n
        c = np.zeros(n_vars)
        for i in range(n):
            for k, s in enumerate(modes):
                c[i * m + k] = problem.power.power(s)
        a_eq = np.zeros((n, n_vars))
        b_eq = np.zeros(n)
        for i, name in enumerate(names):
            for k, s in enumerate(modes):
                a_eq[i, i * m + k] = s
            b_eq[i] = graph.work(name)
        rows = []
        for u, v in zip(idx.edge_src, idx.edge_dst):
            row = np.zeros(n_vars)
            row[n * m + u] = 1.0
            row[n * m + v] = -1.0
            for k in range(m):
                row[v * m + k] = 1.0
            rows.append(row)
        for i in range(n):
            row = np.zeros(n_vars)
            row[n * m + i] = -1.0
            for k in range(m):
                row[i * m + k] = 1.0
            rows.append(row)
        a_ub = np.vstack(rows) if rows else np.zeros((0, n_vars))
        return c, a_ub, a_eq, b_eq

    @pytest.mark.parametrize("cls,n", [("layered", 24), ("chain", 10),
                                       ("fork", 7), ("erdos", 30)])
    def test_sparse_matrices_equal_dense(self, cls, n):
        gen = {"layered": generators.layered_dag, "chain": generators.chain,
               "fork": generators.fork, "erdos": generators.erdos_dag}[cls]
        graph = gen(n, seed=17)
        problem = _problem(graph, model=VddHoppingModel(modes=(0.4, 0.7, 1.0)))
        lp = build_vdd_lp(problem)
        c, a_ub, a_eq, b_eq = self._dense_reference(problem)
        np.testing.assert_array_equal(lp.c, c)
        np.testing.assert_array_equal(lp.a_ub.toarray(), a_ub)
        np.testing.assert_array_equal(lp.a_eq.toarray(), a_eq)
        np.testing.assert_array_equal(lp.b_eq, b_eq)
        np.testing.assert_array_equal(lp.b_ub, np.zeros(a_ub.shape[0]))

    def test_constraint_memory_ratio(self):
        graph = generators.layered_dag(300, seed=5)
        problem = _problem(graph, model=VddHoppingModel(modes=(0.2, 0.4, 0.6, 0.8, 1.0)))
        memory = build_vdd_lp(problem).constraint_memory()
        assert memory["dense_equivalent_bytes"] >= 50 * memory["sparse_bytes"]

    def test_highs_solves_the_sparse_lp(self, small_sp_graph=None):
        graph = generators.layered_dag(40, seed=11)
        problem = _problem(graph, model=VddHoppingModel(modes=(0.4, 0.7, 1.0)))
        solution = solve_vdd_lp(problem)
        check_solution(solution)
        assert solution.metadata["sparse_bytes"] > 0
        assert solution.metadata["dense_equivalent_bytes"] > \
            solution.metadata["sparse_bytes"]

    def test_simplex_backend_matches_highs_on_small_instances(self):
        graph = generators.layered_dag(12, seed=13)
        problem = _problem(graph, model=VddHoppingModel(modes=(0.5, 1.0)))
        highs = solve_vdd_lp(problem, backend="highs")
        simplex = solve_vdd_lp(problem, backend="simplex")
        assert simplex.energy == pytest.approx(highs.energy, rel=1e-6)

    def test_simplex_backend_size_guard(self):
        graph = generators.chain(SIMPLEX_MAX_VARIABLES, seed=1)
        problem = _problem(graph, model=VddHoppingModel(modes=(0.5, 1.0)))
        with pytest.raises(SolverError, match="highs"):
            solve_vdd_lp(problem, backend="simplex")


# --------------------------------------------------------------------------- #
# convex-sparse == gp-slsqp on small instances
# --------------------------------------------------------------------------- #
class TestConvexSparse:
    @pytest.mark.parametrize("cls,n,slack,alpha", [
        ("layered", 40, 1.2, 3.0), ("layered", 100, 2.0, 2.0),
        ("erdos", 60, 1.5, 3.0), ("diamond", 52, 1.3, 3.0),
    ])
    def test_matches_dense_objective(self, cls, n, slack, alpha):
        if cls == "diamond":
            graph = generators.diamond(10, 5, seed=7)
        else:
            gen = {"layered": generators.layered_dag,
                   "erdos": generators.erdos_dag}[cls]
            graph = gen(n, seed=7)
        problem = _problem(graph, slack=slack, alpha=alpha)
        sparse_solution = solve_general_convex_sparse(problem)
        dense_solution = solve_general_convex(problem)
        check_solution(sparse_solution)
        # the interior point may legitimately land *below* the dense
        # pipeline (whose SLSQP stage can stall and fall back to a repaired
        # point); it must never be meaningfully above it
        assert sparse_solution.energy <= dense_solution.energy * (1.0 + 2e-4)

    def test_uncapped_speeds(self):
        graph = generators.layered_dag(50, seed=3)
        problem = _problem(graph, slack=0.5, s_max=math.inf)
        sparse_solution = solve_general_convex_sparse(problem)
        dense_solution = solve_general_convex(problem)
        check_solution(sparse_solution)
        assert sparse_solution.energy <= dense_solution.energy * (1.0 + 2e-4)

    def test_single_task_and_tight_deadline(self):
        single = _problem(generators.chain(1, seed=1))
        solution = solve_general_convex_sparse(single)
        assert solution.solver == "continuous-convex-sparse"
        graph = generators.layered_dag(30, seed=9)
        tight = MinEnergyProblem(graph=graph, deadline=longest_path_length(graph),
                                 model=ContinuousModel(s_max=1.0))
        solution = solve_general_convex_sparse(tight)
        check_solution(solution)
        assert solution.metadata["stage"] == "speed-cap-saturated"

    def test_metadata_records_the_iteration(self):
        problem = _problem(generators.layered_dag(60, seed=21))
        solution = solve_general_convex_sparse(problem)
        assert solution.metadata["converged"]
        assert solution.metadata["iterations"] > 0
        assert solution.metadata["n_constraints"] > 0

    def test_registered_backend_and_aliases(self):
        problem = _problem(generators.layered_dag(40, seed=2))
        by_method = solve(problem, method="convex-sparse")
        assert by_method.solver == "continuous-convex-sparse"
        assert solve(problem, method="sparse").solver == "continuous-convex-sparse"
        assert solve(problem, method="ipm").solver == "continuous-convex-sparse"
        from repro.utils.errors import InvalidOptionError
        # the registry's declared choices catch it before the solver runs
        with pytest.raises(InvalidOptionError, match="forest"):
            solve(problem, method="convex-sparse", options={"warm_start": "x"})
        # the solver's own guard covers direct calls
        with pytest.raises(SolverError, match="forest"):
            solve_general_convex_sparse(problem, warm_start="x")

    def test_unknown_option_names_the_backend(self):
        problem = _problem(generators.layered_dag(20, seed=2))
        with pytest.raises(UnknownOptionError,
                           match=r"continuous/convex-sparse"):
            solve(problem, method="convex-sparse", options={"bogus": 1})

    def test_auto_dispatch_routes_large_general_dags_to_sparse(self):
        large = _problem(generators.layered_dag(SPARSE_DISPATCH_THRESHOLD + 44,
                                                seed=31), slack=1.4)
        assert solve_continuous(large).solver == "continuous-convex-sparse"
        small = _problem(generators.layered_dag(40, seed=31), slack=1.4)
        assert solve_continuous(small).solver == "continuous-convex"

    def test_dense_cap_error_names_backend_and_dimensions(self):
        graph = generators.chain(40, seed=1)
        problem = _problem(graph)
        with pytest.raises(SolverError) as excinfo:
            solve_general_convex(problem, max_dense_tasks=10)
        message = str(excinfo.value)
        assert "gp-slsqp" in message
        assert "40-task" in message and "39-edge" in message
        assert "convex-sparse" in message

    def test_edge_pruning_preserves_reachability_constraints(self):
        graph = generators.erdos_dag(80, seed=19, edge_probability=0.3)
        idx = graph.index()
        esrc, edst = prune_redundant_edges(idx)
        assert len(esrc) < idx.n_edges  # dense random DAGs shed most edges
        # every pruned edge must still be implied: identical ASAP times
        durations = idx.works / 0.7
        _, full_finish = asap_times(idx, durations)
        g_pruned, _h = build_sparse_constraints(idx.n_tasks, esrc, edst,
                                                np.full(idx.n_tasks, 1e-9))
        # rebuild a graph from the surviving edges and compare schedules
        from repro.graphs.taskgraph import TaskGraph
        pruned_graph = TaskGraph(
            tasks=[(name, graph.work(name)) for name in idx.names],
            edges=[(idx.names[u], idx.names[v]) for u, v in zip(esrc, edst)])
        _, pruned_finish = asap_times(pruned_graph.index(), durations)
        np.testing.assert_allclose(pruned_finish, full_finish, rtol=1e-12)


# --------------------------------------------------------------------------- #
# asap_update cone repairs == full recomputes
# --------------------------------------------------------------------------- #
class TestAsapUpdate:
    @pytest.mark.parametrize("cls", ["layered", "erdos", "tree", "chain"])
    def test_randomized_flips_match_full_recompute(self, cls):
        gen = {"layered": generators.layered_dag, "erdos": generators.erdos_dag,
               "tree": generators.random_tree, "chain": generators.chain}[cls]
        graph = gen(60, seed=23)
        idx = graph.index()
        rng = np.random.default_rng(23)
        modes = np.array([0.25, 0.5, 0.75, 1.0])
        speed_of = rng.integers(0, len(modes), size=idx.n_tasks)
        durations = idx.works / modes[speed_of]
        start, finish = asap_times(idx, durations)
        for _ in range(200):
            task = int(rng.integers(0, idx.n_tasks))
            speed_of[task] = int(rng.integers(0, len(modes)))  # up or down
            durations[task] = idx.works[task] / modes[speed_of[task]]
            touched = idx.asap_update(durations, start, finish, task)
            assert touched is not None
            ref_start, ref_finish = asap_times(idx, durations)
            np.testing.assert_array_equal(start, ref_start)
            np.testing.assert_array_equal(finish, ref_finish)

    def test_noop_change_touches_nothing(self):
        graph = generators.layered_dag(40, seed=5)
        idx = graph.index()
        durations = idx.works / 1.0
        start, finish = asap_times(idx, durations)
        assert idx.asap_update(durations, start, finish, 7) == []

    def test_revert_restores_exactly(self):
        graph = generators.layered_dag(50, seed=29)
        idx = graph.index()
        durations = idx.works / 1.0
        start, finish = asap_times(idx, durations)
        before = (start.copy(), finish.copy())
        old = durations[3]
        durations[3] *= 2.5
        assert idx.asap_update(durations, start, finish, 3)
        durations[3] = old
        idx.asap_update(durations, start, finish, 3)
        np.testing.assert_array_equal(start, before[0])
        np.testing.assert_array_equal(finish, before[1])

    def test_visit_budget_aborts(self):
        graph = generators.chain(100, seed=1)
        idx = graph.index()
        durations = idx.works / 1.0
        start, finish = asap_times(idx, durations)
        durations[0] *= 2.0
        assert idx.asap_update(durations, start, finish, 0, max_visits=5) is None
        # caller contract: rebuild fully after an aborted update
        start, finish = asap_times(idx, durations)
        assert finish[-1] == pytest.approx(float(np.sum(durations)))


# --------------------------------------------------------------------------- #
# incremental greedy == classical rescan greedy
# --------------------------------------------------------------------------- #
class TestIncrementalGreedy:
    @staticmethod
    def _reference_greedy(problem):
        """The seed formulation: full rescan, full makespan per probe."""
        model = problem.model
        graph = problem.graph
        idx = graph.index()
        works = idx.works
        modes = list(model.modes)
        power = problem.power
        deadline = problem.deadline
        mode_of = [len(modes) - 1] * idx.n_tasks
        durations = (works / modes[-1]).copy()
        while True:
            best_i = None
            best_saving = 0.0
            for i in range(idx.n_tasks):
                m = mode_of[i]
                if m == 0:
                    continue
                saving = (power.energy_for_work(works[i], modes[m])
                          - power.energy_for_work(works[i], modes[m - 1]))
                if saving <= best_saving:
                    continue
                old = durations[i]
                durations[i] = works[i] / modes[m - 1]
                feasible = leq_with_tol(compute_makespan(graph, durations), deadline)
                durations[i] = old
                if feasible:
                    best_i, best_saving = i, saving
            if best_i is None:
                break
            mode_of[best_i] -= 1
            durations[best_i] = works[best_i] / modes[mode_of[best_i]]
        return {idx.names[i]: modes[m] for i, m in enumerate(mode_of)}

    @pytest.mark.parametrize("cls,n,slack", [
        ("layered", 40, 1.3), ("tree", 60, 1.8), ("chain", 25, 1.2),
        ("erdos", 50, 1.6), ("fork", 30, 2.5),
    ])
    def test_matches_reference_move_for_move(self, cls, n, slack):
        from repro.discrete.heuristics import solve_discrete_greedy_reclaim

        gen = {"layered": generators.layered_dag, "tree": generators.random_tree,
               "chain": generators.chain, "erdos": generators.erdos_dag,
               "fork": generators.fork}[cls]
        graph = gen(n, seed=37)
        problem = _problem(graph, slack=slack,
                           model=DiscreteModel(modes=(0.3, 0.55, 0.8, 1.0)))
        incremental = solve_discrete_greedy_reclaim(problem)
        check_solution(incremental)
        reference = self._reference_greedy(problem)
        assert incremental.speeds() == pytest.approx(reference)

    def test_all_slowest_shortcut(self):
        from repro.discrete.heuristics import solve_discrete_greedy_reclaim

        graph = generators.layered_dag(30, seed=41)
        problem = _problem(graph, slack=50.0,
                           model=DiscreteModel(modes=(0.5, 1.0)))
        solution = solve_discrete_greedy_reclaim(problem)
        assert solution.metadata.get("all_slowest_shortcut")
        assert set(solution.speeds().values()) == {0.5}

    def test_best_heuristic_accepts_large_wide_graphs(self):
        from repro.discrete.heuristics import solve_discrete_best_heuristic

        graph = generators.layered_dag(600, seed=43)
        problem = _problem(graph, slack=1.4,
                           model=DiscreteModel(modes=(0.25, 0.5, 0.75, 1.0)))
        solution = solve_discrete_best_heuristic(problem)
        check_solution(solution)
        # above the retired 512 cap the greedy now actually runs
        assert "greedy_skipped" not in solution.metadata
        assert "greedy_energy" in solution.metadata

    def test_best_heuristic_depth_guard(self):
        from repro.discrete.heuristics import solve_discrete_best_heuristic

        graph = generators.chain(2100, seed=47)
        problem = _problem(graph, slack=1.4,
                           model=DiscreteModel(modes=(0.5, 1.0)))
        solution = solve_discrete_best_heuristic(problem)
        assert "greedy_depth_threshold" in solution.metadata["greedy_skipped"]


# --------------------------------------------------------------------------- #
# calibrated shard priors
# --------------------------------------------------------------------------- #
class TestPriorsFromRows:
    @staticmethod
    def _rows(coeff, exponent, sizes, cls="layered", reps=3, noise=0.0):
        rng = np.random.default_rng(53)
        rows = []
        for n in sizes:
            for _ in range(reps):
                seconds = coeff * (n / 100.0) ** exponent
                if noise:
                    seconds *= float(np.exp(rng.normal(0.0, noise)))
                rows.append({"graph_class": cls, "n_tasks": n,
                             "seconds": seconds, "ok": True, "cache_hit": False})
        return rows

    def test_fit_recovers_synthetic_power_law(self):
        rows = self._rows(0.05, 1.7, (100, 400, 1600))
        priors = priors_from_rows(rows)
        coeff, exponent = priors["layered"]
        assert exponent == pytest.approx(1.7, abs=1e-9)
        assert coeff == pytest.approx(0.05, rel=1e-9)
        # the fitted priors drive estimate_cost verbatim
        assert estimate_cost("layered", 400, priors=priors) == \
            pytest.approx(0.05 * 4.0 ** 1.7, rel=1e-9)

    def test_fit_is_robust_to_noise_and_pools_the_fallback(self):
        rows = (self._rows(0.05, 1.7, (100, 400, 1600), noise=0.2)
                + self._rows(0.002, 1.0, (100, 400, 1600), cls="chain", noise=0.2))
        priors = priors_from_rows(rows)
        assert priors["layered"][1] == pytest.approx(1.7, abs=0.35)
        assert priors["chain"][1] == pytest.approx(1.0, abs=0.35)
        assert None in priors  # pooled fallback for unknown classes

    def test_failed_and_cached_rows_are_ignored(self):
        rows = self._rows(0.05, 1.7, (100, 400))
        rows.append({"graph_class": "layered", "n_tasks": 400,
                     "seconds": 1e-5, "ok": True, "cache_hit": True})
        rows.append({"graph_class": "layered", "n_tasks": 400,
                     "seconds": 99.0, "ok": False, "cache_hit": False})
        priors = priors_from_rows(rows)
        assert priors["layered"][1] == pytest.approx(1.7, abs=1e-9)

    def test_single_size_keeps_builtin_exponent(self):
        rows = self._rows(0.05, 1.7, (400,), cls="chain")
        priors = priors_from_rows(rows, model="continuous")
        coeff, exponent = priors["chain"]
        assert exponent == 1.0  # the built-in chain exponent
        assert coeff == pytest.approx(0.05 * 4.0 ** 1.7 / 4.0 ** 1.0, rel=1e-9)

    def test_accepts_sweep_tables(self):
        table = Table(columns=["graph_class", "n_tasks", "slack", "seconds",
                               "ok", "cache_hit"],
                      title="t")
        for n in (64, 256):
            table.add_row("layered", n, 1.5, 0.01 * (n / 100.0) ** 2.0, True, False)
        priors = priors_from_rows(table)
        assert priors["layered"][1] == pytest.approx(2.0, abs=1e-9)

    def test_sweep_accepts_calibrated_priors(self):
        from repro.batch import sweep

        priors = {"layered": (5.0, 2.0), "chain": (0.001, 1.0), None: (1.0, 2.0)}
        legs = [sweep(graph_classes=("chain", "layered"), sizes=(8, 12),
                      slacks=(1.5,), repetitions=2, seed=3,
                      shard=f"{i}/2", priors=priors)
                for i in (1, 2)]
        total = sum(len(leg) for leg in legs)
        full = sweep(graph_classes=("chain", "layered"), sizes=(8, 12),
                     slacks=(1.5,), repetitions=2, seed=3)
        assert total == len(full)
