"""Tests for the energy models and the power law."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.power import CUBIC, PowerLaw
from repro.utils.errors import InvalidModelError


class TestPowerLaw:
    def test_cubic_power(self):
        assert CUBIC.power(2.0) == 8.0

    def test_cubic_energy(self):
        assert CUBIC.energy(2.0, 3.0) == 24.0

    def test_energy_for_work_cubic(self):
        # w * s^2 for alpha = 3
        assert CUBIC.energy_for_work(5.0, 2.0) == 20.0

    def test_energy_for_work_zero_work(self):
        assert CUBIC.energy_for_work(0.0, 2.0) == 0.0

    def test_energy_for_work_zero_speed_is_infinite(self):
        assert CUBIC.energy_for_work(1.0, 0.0) == math.inf

    def test_negative_speed_rejected(self):
        with pytest.raises(InvalidModelError):
            CUBIC.power(-1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(InvalidModelError):
            CUBIC.energy(1.0, -1.0)

    def test_negative_work_rejected(self):
        with pytest.raises(InvalidModelError):
            CUBIC.energy_for_work(-1.0, 1.0)

    def test_alpha_must_exceed_one(self):
        with pytest.raises(InvalidModelError):
            PowerLaw(alpha=1.0)

    def test_alternative_alpha(self):
        quad = PowerLaw(alpha=2.0)
        assert quad.energy_for_work(3.0, 2.0) == 6.0  # w * s^(alpha-1)

    def test_optimal_single_task_speed(self):
        assert CUBIC.optimal_single_task_speed(10.0, 4.0) == 2.5

    def test_optimal_single_task_speed_bad_deadline(self):
        with pytest.raises(InvalidModelError):
            CUBIC.optimal_single_task_speed(1.0, 0.0)

    @given(st.floats(min_value=0.01, max_value=100.0),
           st.floats(min_value=0.01, max_value=100.0))
    def test_energy_consistency(self, work, speed):
        # E = P(s) * (w / s) must equal energy_for_work(w, s)
        direct = CUBIC.energy(speed, work / speed)
        assert direct == pytest.approx(CUBIC.energy_for_work(work, speed), rel=1e-9)

    @given(st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=1.01, max_value=2.0))
    def test_energy_monotone_in_speed(self, work, speed, factor):
        assert (CUBIC.energy_for_work(work, speed * factor)
                > CUBIC.energy_for_work(work, speed))


class TestContinuousModel:
    def test_default_is_uncapped(self):
        m = ContinuousModel()
        assert math.isinf(m.max_speed)
        assert not m.has_speed_cap()

    def test_admissibility(self):
        m = ContinuousModel(s_max=2.0)
        assert m.is_admissible(1.5)
        assert m.is_admissible(2.0)
        assert not m.is_admissible(2.5)
        assert not m.is_admissible(0.0)
        assert not m.is_admissible(-1.0)

    def test_admissibility_tolerates_tiny_overshoot(self):
        m = ContinuousModel(s_max=2.0)
        assert m.is_admissible(2.0 * (1 + 1e-9))

    def test_invalid_s_max(self):
        with pytest.raises(InvalidModelError):
            ContinuousModel(s_max=0.0)

    def test_not_mode_based(self):
        assert not ContinuousModel().is_mode_based()

    def test_min_speed_is_zero(self):
        assert ContinuousModel().min_speed == 0.0


class TestDiscreteModel:
    def test_modes_sorted_and_deduplicated(self):
        m = DiscreteModel(modes=(2.0, 1.0, 2.0, 0.5))
        assert m.modes == (0.5, 1.0, 2.0)
        assert m.n_modes == 3

    def test_min_max(self):
        m = DiscreteModel(modes=(0.5, 1.0, 2.0))
        assert m.min_speed == 0.5
        assert m.max_speed == 2.0

    def test_empty_modes_rejected(self):
        with pytest.raises(InvalidModelError):
            DiscreteModel(modes=())

    def test_non_positive_mode_rejected(self):
        with pytest.raises(InvalidModelError):
            DiscreteModel(modes=(0.0, 1.0))

    def test_admissibility(self):
        m = DiscreteModel(modes=(0.5, 1.0))
        assert m.is_admissible(0.5)
        assert m.is_admissible(1.0)
        assert not m.is_admissible(0.75)

    def test_round_up(self):
        m = DiscreteModel(modes=(0.5, 1.0, 2.0))
        assert m.round_up(0.3) == 0.5
        assert m.round_up(0.6) == 1.0
        assert m.round_up(1.0) == 1.0
        assert m.round_up(1.5) == 2.0

    def test_round_up_above_max_rejected(self):
        m = DiscreteModel(modes=(0.5, 1.0))
        with pytest.raises(InvalidModelError):
            m.round_up(1.5)

    def test_round_down(self):
        m = DiscreteModel(modes=(0.5, 1.0, 2.0))
        assert m.round_down(0.7) == 0.5
        assert m.round_down(2.5) == 2.0
        assert m.round_down(1.0) == 1.0

    def test_round_down_below_min_rejected(self):
        m = DiscreteModel(modes=(0.5, 1.0))
        with pytest.raises(InvalidModelError):
            m.round_down(0.2)

    def test_bracketing_modes(self):
        m = DiscreteModel(modes=(0.5, 1.0, 2.0))
        assert m.bracketing_modes(0.7) == (0.5, 1.0)
        assert m.bracketing_modes(0.1) == (0.5, 0.5)
        assert m.bracketing_modes(3.0) == (2.0, 2.0)

    def test_max_mode_gap(self):
        m = DiscreteModel(modes=(0.5, 1.0, 2.0))
        assert m.max_mode_gap() == 1.0
        assert DiscreteModel(modes=(1.0,)).max_mode_gap() == 0.0

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8),
           st.floats(min_value=0.01, max_value=10.0))
    @settings(max_examples=50)
    def test_round_up_is_smallest_admissible_at_least_target(self, modes, target):
        m = DiscreteModel(modes=tuple(modes))
        if target > m.max_speed:
            with pytest.raises(InvalidModelError):
                m.round_up(target)
            return
        rounded = m.round_up(target)
        assert rounded in m.modes
        assert rounded >= target * (1 - 1e-9)
        smaller = [x for x in m.modes if x < rounded]
        assert all(x < target * (1 + 1e-9) for x in smaller)


class TestVddHoppingModel:
    def test_allows_switching(self):
        m = VddHoppingModel(modes=(1.0, 2.0))
        assert m.allows_mid_task_switching
        assert not DiscreteModel(modes=(1.0, 2.0)).allows_mid_task_switching

    def test_name(self):
        assert VddHoppingModel(modes=(1.0,)).name == "vdd-hopping"


class TestIncrementalModel:
    def test_from_range_grid(self):
        m = IncrementalModel.from_range(1.0, 2.0, 0.25)
        assert m.modes == (1.0, 1.25, 1.5, 1.75, 2.0)
        assert m.s_min == 1.0
        assert m.s_max == 2.0
        assert m.delta == 0.25

    def test_from_range_non_divisible(self):
        m = IncrementalModel.from_range(1.0, 2.0, 0.3)
        assert m.modes == (1.0, 1.3, 1.6, pytest.approx(1.9))
        assert m.max_speed == pytest.approx(1.9)

    def test_from_range_single_point(self):
        m = IncrementalModel.from_range(1.0, 1.0, 0.5)
        assert m.modes == (1.0,)

    def test_from_range_invalid(self):
        with pytest.raises(InvalidModelError):
            IncrementalModel.from_range(0.0, 1.0, 0.1)
        with pytest.raises(InvalidModelError):
            IncrementalModel.from_range(2.0, 1.0, 0.1)
        with pytest.raises(InvalidModelError):
            IncrementalModel.from_range(1.0, 2.0, 0.0)

    def test_direct_construction_infers_triple(self):
        m = IncrementalModel(modes=(1.0, 1.5, 2.0))
        assert m.s_min == 1.0
        assert m.s_max == 2.0
        assert m.delta == 0.5

    def test_approximation_ratio(self):
        m = IncrementalModel.from_range(1.0, 2.0, 0.5)
        assert m.approximation_ratio_vs_continuous() == pytest.approx(2.25)

    def test_views(self):
        m = IncrementalModel.from_range(1.0, 2.0, 0.5)
        assert isinstance(m.to_discrete(), DiscreteModel)
        assert m.to_discrete().modes == m.modes
        assert isinstance(m.to_vdd_hopping(), VddHoppingModel)
        assert m.to_vdd_hopping().modes == m.modes

    @given(st.floats(min_value=0.1, max_value=2.0),
           st.floats(min_value=0.0, max_value=4.0),
           st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=50)
    def test_grid_spacing_and_bounds(self, s_min, span, delta):
        m = IncrementalModel.from_range(s_min, s_min + span, delta)
        assert m.modes[0] == pytest.approx(s_min)
        assert m.modes[-1] <= s_min + span + 1e-9
        for a, b in zip(m.modes, m.modes[1:]):
            assert b - a == pytest.approx(delta, rel=1e-9)
