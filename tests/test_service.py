"""Tests for the async solver-service front-end.

Covers: submitting problem lists and sweep grids, polling status/progress,
blocking and awaited completion, per-instance failure capture inside a job,
cache-backed submissions resolving without touching the pool, job tables,
cancellation/shutdown, and the interrupt/worker-death hardening of the
underlying ``solve_many`` fan-out.
"""

from __future__ import annotations

import asyncio
import os
import sys

import pytest

from repro.batch import failed, solve_many, summarize
from repro.cache import memory_cache
from repro.core.models import ContinuousModel, DiscreteModel
from repro.core.problem import MinEnergyProblem
from repro.graphs import generators
from repro.service import JobStatus, SolverService

MODES = (0.4, 0.6, 0.8, 1.0)


def _problem(n: int = 10, *, slack: float = 1.5, seed: int = 1,
             model=None) -> MinEnergyProblem:
    graph = generators.layered_dag(n, seed=seed)
    return MinEnergyProblem(graph=graph, deadline=slack * graph.total_work(),
                            model=model or ContinuousModel(s_max=1.0))


def _infeasible(seed: int = 2) -> MinEnergyProblem:
    graph = generators.chain(6, seed=seed)
    return MinEnergyProblem(graph=graph, deadline=0.4 * graph.total_work(),
                            model=ContinuousModel(s_max=1.0))


@pytest.fixture
def service():
    with SolverService(workers=2, use_threads=True) as svc:
        yield svc


class TestSubmission:
    def test_submit_problem_list_and_poll_to_completion(self, service):
        handle = service.submit([_problem(seed=s) for s in range(3)],
                                name="triple")
        assert handle.total == 3
        results = handle.results(timeout=60)
        assert handle.status() is JobStatus.DONE
        assert [r.ok for r in results] == [True] * 3
        assert [r.index for r in results] == [0, 1, 2]
        progress = handle.progress()
        assert progress.done == 3 and progress.failed == 0
        assert progress.fraction == 1.0

    def test_submit_sweep_grid(self, service):
        handle = service.submit_sweep(graph_classes=("chain", "tree"),
                                      sizes=(8,), slacks=(1.5,),
                                      repetitions=2, seed=5)
        results = handle.results(timeout=60)
        assert len(results) == 4
        assert all(r.ok for r in results)
        # grid coordinates survive into the job table
        table = service.job_table(handle.job_id)
        assert set(table.column("graph_class")) == {"chain", "tree"}
        assert all(isinstance(s, int) for s in table.column("seed"))

    def test_submit_mapping_is_a_sweep(self, service):
        handle = service.submit({"graph_classes": ("chain",), "sizes": (6,),
                                 "slacks": (1.5,), "repetitions": 1, "seed": 3})
        assert handle.total == 1
        assert handle.results(timeout=60)[0].ok

    def test_per_instance_failures_are_captured_not_fatal(self, service):
        handle = service.submit([_problem(seed=1), _infeasible(), _problem(seed=3)])
        results = handle.results(timeout=60)
        assert handle.status() is JobStatus.DONE
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error_type == "InfeasibleProblemError"
        assert handle.progress().failed == 1

    def test_seeds_recorded_in_metadata(self, service):
        handle = service.submit([_problem(seed=9)], seeds=[1234])
        [result] = handle.results(timeout=60)
        assert result.metadata["seed"] == 1234
        assert result.metadata["cache_hit"] is False

    def test_submit_mapping_rejects_seeds_and_reserved_keys(self, service):
        with pytest.raises(ValueError, match="seeds"):
            service.submit({"graph_classes": ("chain",), "sizes": (6,)},
                           seeds=[7])
        with pytest.raises(ValueError, match="keyword arguments"):
            service.submit({"graph_classes": ("chain",), "sizes": (6,),
                            "name": "collides"})

    def test_submit_after_shutdown_raises(self):
        svc = SolverService(workers=1, use_threads=True)
        svc.shutdown()
        with pytest.raises(RuntimeError):
            svc.submit([_problem()])


class TestAsyncCompletion:
    def test_await_handle_returns_results(self, service):
        async def run():
            handle = service.submit([_problem(seed=s) for s in range(3)])
            return await handle

        results = asyncio.run(run())
        assert [r.ok for r in results] == [True] * 3

    def test_gather_many_jobs(self, service):
        async def run():
            handles = [service.submit([_problem(seed=s)]) for s in range(3)]
            return await asyncio.gather(*(h.wait() for h in handles))

        batches = asyncio.run(run())
        assert [len(b) for b in batches] == [1, 1, 1]
        assert all(b[0].ok for b in batches)


class TestServiceCache:
    def test_warm_cache_resolves_without_touching_the_pool(self):
        cache = memory_cache()
        with SolverService(workers=1, use_threads=True, cache=cache) as svc:
            first = svc.submit([_problem(seed=s) for s in range(2)])
            first.results(timeout=60)
            second = svc.submit([_problem(seed=s) for s in range(2)])
            # every instance pre-resolved: no futures, job born DONE
            assert second.status() is JobStatus.DONE
            results = second.results(timeout=0)
            assert all(r.cache_hit for r in results)
            assert second.progress().cache_hits == 2

    def test_mixed_hit_miss_submission(self):
        cache = memory_cache()
        with SolverService(workers=1, use_threads=True, cache=cache) as svc:
            svc.submit([_problem(seed=1)]).results(timeout=60)
            handle = svc.submit([_problem(seed=1), _problem(seed=2)])
            results = handle.results(timeout=60)
            assert [r.cache_hit for r in results] == [True, False]


class TestJobBookkeeping:
    def test_jobs_listing_and_lookup(self, service):
        h1 = service.submit([_problem(seed=1)], name="first")
        h2 = service.submit([_problem(seed=2)], name="second")
        assert [h.name for h in service.jobs()] == ["first", "second"]
        assert service.job(h1.job_id) is h1
        with pytest.raises(KeyError):
            service.job("job-unknown")
        h1.results(timeout=60)
        h2.results(timeout=60)

    def test_cancelled_rows_keep_instance_identity(self):
        from concurrent.futures import Future

        from repro.service.jobs import JobHandle

        never_ran = Future()
        assert never_ran.cancel()
        handle = JobHandle("job-x", futures=[never_ran], future_indices=[0],
                           total=1, instance_meta=[("my-problem", 7)])
        [row] = handle.results(timeout=0)
        assert not row.ok and row.error_type == "CancelledError"
        assert row.name == "my-problem" and row.n_tasks == 7

    def test_describe_is_jsonable(self, service):
        import json

        handle = service.submit([_problem(seed=4)], name="desc")
        handle.results(timeout=60)
        record = handle.describe()
        assert record["status"] == "done"
        assert record["total"] == 1
        json.dumps(record)  # must not raise


class TestFanOutHardening:
    """Satellite: solve_many survives interrupts and worker death."""

    def test_serial_keyboard_interrupt_returns_partial_results(self, monkeypatch):
        import repro.batch.engine as engine

        problems = [_problem(seed=s) for s in range(3)]
        real = engine._solve_one
        calls = {"n": 0}

        def interrupting(item):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(item)

        monkeypatch.setattr(engine, "_solve_one", interrupting)
        results = engine.solve_many(problems, workers=None)
        assert len(results) == 3
        assert results[0].ok
        assert not results[1].ok and results[1].error_type == "KeyboardInterrupt"
        assert not results[2].ok and results[2].error_type == "KeyboardInterrupt"
        assert len(failed(results)) == 2

    @pytest.mark.skipif(sys.platform != "linux", reason="fork start method")
    def test_pool_worker_death_recorded_not_leaked(self):
        problems = [_problem(seed=1), _problem(seed=2, model=_LethalModel()),
                    _problem(seed=3)]
        results = solve_many(problems, workers=2)
        assert len(results) == 3
        stats = summarize(results)
        assert stats["n_failed"] >= 1
        dead = [r for r in results if r.error_type == "BrokenProcessPool"]
        assert dead, [r.error_type for r in results]

    def test_summarize_reports_cache_hits_field(self):
        results = solve_many([_problem(seed=1)])
        assert summarize(results)["cache_hits"] == 0


class TestCliSubmitAndJobs:
    def test_submit_writes_record_and_jobs_lists_it(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["submit", "--classes", "chain", "--sizes", "6,8",
                     "--slacks", "1.5", "--workers", "2", "--poll", "0.05",
                     "--jobs-dir", str(tmp_path), "--name", "smoke", "--csv"])
        captured = capsys.readouterr()
        assert code == 0
        lines = [l for l in captured.out.strip().splitlines() if l]
        assert lines[0].startswith("graph_class,")
        assert len(lines) == 3  # header + 2 rows
        assert "record:" in captured.err
        records = list(tmp_path.glob("*.json"))
        assert len(records) == 1

        code = main(["jobs", "--jobs-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "done" in out

    def test_jobs_empty_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["jobs", "--jobs-dir", str(tmp_path / "nope")]) == 0
        assert "no job records" in capsys.readouterr().out


class _LethalModel(ContinuousModel):
    """A model whose feasibility probe kills the worker process outright.

    ``SystemExit``/``os._exit`` bypass the per-instance ``except Exception``
    capture, so the pool sees a dead worker — exactly the failure mode the
    graceful-shutdown path must absorb.
    """

    @property
    def max_speed(self) -> float:
        os._exit(13)
