"""Tests for the AST invariant checker (``repro lint``).

Each rule gets a true-positive, a true-negative, and (via the runner) a
suppression fixture; the meta-test at the end asserts the shipped
package itself lints clean, which is what keeps the baseline empty.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (ALL_RULES, Finding, ProjectModel, run_lint,
                            rules_by_name)
from repro.analysis.baseline import load_baseline, save_baseline
from repro.analysis.rules.assembly import ModelingOnlyAssemblyRule
from repro.analysis.rules.atomic_writes import AtomicWritesRule
from repro.analysis.rules.failpoint_registry import FailpointRegistryRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.retry_safety import RetrySafetyRule
from repro.analysis.rules.schema_drift import SchemaDriftRule
from repro.analysis.rules.typed_errors import TypedErrorsRule
from repro.cli import main
from repro.utils.errors import InvalidParameterError


def make_project(tmp_path, files: dict) -> Path:
    root = tmp_path / "pkg"
    for rel, src in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
    return root


def findings_of(rule, root: Path) -> list[Finding]:
    return sorted(rule.check(ProjectModel(root, package="repro")))


ERRORS_MODULE = """\
    class ReproError(Exception):
        pass

    class GoodError(ReproError):
        pass
    """


# --------------------------------------------------------------------- #
# typed-errors
# --------------------------------------------------------------------- #
class TestTypedErrorsRule:
    def test_flags_builtin_and_untyped_raises(self, tmp_path):
        root = make_project(tmp_path, {
            "utils/errors.py": ERRORS_MODULE,
            "api/thing.py": """\
                class Oops(Exception):
                    pass

                def f(x):
                    if x < 0:
                        raise ValueError("negative")
                    raise Oops("untyped")
                """,
        })
        found = findings_of(TypedErrorsRule(), root)
        assert [(f.file, f.line) for f in found] == [
            ("api/thing.py", 6), ("api/thing.py", 7)]
        assert "ValueError" in found[0].message
        assert "Oops" in found[1].message

    def test_accepts_typed_raises_and_control_flow(self, tmp_path):
        root = make_project(tmp_path, {
            "utils/errors.py": ERRORS_MODULE,
            "api/thing.py": """\
                from repro.utils.errors import GoodError

                def f(x):
                    if x < 0:
                        raise GoodError("negative")
                    if x == 0:
                        raise NotImplementedError
                    raise  # bare re-raise is fine
                """,
        })
        assert findings_of(TypedErrorsRule(), root) == []

    def test_flags_subclass_missing_from_wire_table(self, tmp_path):
        root = make_project(tmp_path, {
            "utils/errors.py": ERRORS_MODULE + """\

    class ForgottenError(ReproError):
        pass
    """,
            "api/protocol.py": """\
                from repro.utils.errors import GoodError, ReproError

                WIRE_ERROR_TYPES: tuple = (GoodError, ReproError)
                """,
        })
        found = findings_of(TypedErrorsRule(), root)
        assert len(found) == 1
        assert found[0].file == "utils/errors.py"
        assert "ForgottenError" in found[0].message
        assert "WIRE_ERROR_TYPES" in found[0].message

    def test_suppression_comment(self, tmp_path):
        root = make_project(tmp_path, {
            "utils/errors.py": ERRORS_MODULE,
            "api/thing.py": """\
                def f():
                    raise ValueError("x")  # repro-lint: disable=typed-errors
                """,
        })
        report = run_lint(root, rules=[TypedErrorsRule()])
        assert report.findings == []
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# modeling-only-assembly
# --------------------------------------------------------------------- #
class TestModelingOnlyAssemblyRule:
    def test_flags_assembly_outside_modeling(self, tmp_path):
        root = make_project(tmp_path, {
            "batch/build.py": """\
                import scipy.sparse as sp

                def f(rows):
                    return sp.coo_matrix(rows)
                """,
        })
        found = findings_of(ModelingOnlyAssemblyRule(), root)
        assert [(f.file, f.line) for f in found] == [("batch/build.py", 4)]
        assert "coo_matrix" in found[0].message

    def test_allows_modeling_predicates_and_linalg(self, tmp_path):
        root = make_project(tmp_path, {
            "modeling/build.py": """\
                from scipy.sparse import csr_matrix

                def f(rows):
                    return csr_matrix(rows)
                """,
            "batch/solve.py": """\
                import scipy.sparse as sp
                import scipy.sparse.linalg as spla

                def f(mat, b):
                    assert sp.issparse(mat)
                    return spla.spsolve(mat, b)
                """,
        })
        assert findings_of(ModelingOnlyAssemblyRule(), root) == []

    def test_suppression_comment(self, tmp_path):
        root = make_project(tmp_path, {
            "batch/build.py": """\
                import scipy.sparse as sp

                def f(rows):
                    return sp.coo_matrix(rows)  # repro-lint: disable=modeling-only-assembly
                """,
        })
        report = run_lint(root, rules=[ModelingOnlyAssemblyRule()])
        assert report.findings == []
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# atomic-writes
# --------------------------------------------------------------------- #
class TestAtomicWritesRule:
    def test_flags_bare_writes_in_durable_paths(self, tmp_path):
        root = make_project(tmp_path, {
            "api/store.py": """\
                def save(path, data):
                    path.write_text(data)

                def dump(path, data):
                    with open(path, "w") as fh:
                        fh.write(data)
                """,
        })
        found = findings_of(AtomicWritesRule(), root)
        assert [(f.file, f.line) for f in found] == [
            ("api/store.py", 2), ("api/store.py", 5)]

    def test_allows_atomic_functions_and_non_durable_paths(self, tmp_path):
        root = make_project(tmp_path, {
            "api/store.py": """\
                import os

                def save(path, data):
                    tmp = path.with_name(path.name + ".tmp")
                    tmp.write_text(data)
                    os.replace(tmp, path)

                def helper_save(path, data):
                    from repro.utils.atomicio import atomic_write_text

                    atomic_write_text(path, data)

                def load(path):
                    with open(path) as fh:
                        return fh.read()
                """,
            "utils/report.py": """\
                def save(path, data):
                    path.write_text(data)
                """,
        })
        assert findings_of(AtomicWritesRule(), root) == []

    def test_suppression_comment(self, tmp_path):
        root = make_project(tmp_path, {
            "api/store.py": """\
                def save(path, data):
                    path.write_text(data)  # repro-lint: disable=atomic-writes
                """,
        })
        report = run_lint(root, rules=[AtomicWritesRule()])
        assert report.findings == []
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------- #
class TestLockDisciplineRule:
    def test_flags_unguarded_write_of_guarded_attribute(self, tmp_path):
        root = make_project(tmp_path, {
            "service/svc.py": """\
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def reset(self):
                        self._count = 0
                """,
        })
        found = findings_of(LockDisciplineRule(), root)
        assert [(f.file, f.line) for f in found] == [("service/svc.py", 13)]
        assert "reset" in found[0].message
        assert "_count" in found[0].message

    def test_flags_blocking_call_under_lock(self, tmp_path):
        root = make_project(tmp_path, {
            "service/svc.py": """\
                import threading
                import time

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def tick(self):
                        with self._lock:
                            time.sleep(0.1)
                """,
        })
        found = findings_of(LockDisciplineRule(), root)
        assert len(found) == 1
        assert "time.sleep" in found[0].message

    def test_flags_thread_shared_attribute_without_lock(self, tmp_path):
        root = make_project(tmp_path, {
            "service/svc.py": """\
                import threading

                class Pump:
                    def __init__(self):
                        self._stop = False
                        self._thread = threading.Thread(target=self._run)

                    def _run(self):
                        self._stop = False

                    def stop(self):
                        self._stop = True
                """,
        })
        found = findings_of(LockDisciplineRule(), root)
        assert {f.line for f in found} == {9, 12}
        assert all("_run" in f.message for f in found)

    def test_accepts_guarded_writes_and_init(self, tmp_path):
        root = make_project(tmp_path, {
            "service/svc.py": """\
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def reset(self):
                        with self._lock:
                            self._count = 0
                """,
        })
        assert findings_of(LockDisciplineRule(), root) == []

    def test_suppression_comment(self, tmp_path):
        root = make_project(tmp_path, {
            "service/svc.py": """\
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._count = 0

                    def bump(self):
                        with self._lock:
                            self._count += 1

                    def reset(self):
                        self._count = 0  # repro-lint: disable=lock-discipline
                """,
        })
        report = run_lint(root, rules=[LockDisciplineRule()])
        assert report.findings == []
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# failpoint-registry
# --------------------------------------------------------------------- #
FAILPOINTS_MODULE = """\
    SITES = frozenset({"jobstore.write", "http.request"})

    def fire(site):
        pass
    """


class TestFailpointRegistryRule:
    def test_flags_unknown_and_unreferenced_sites(self, tmp_path):
        root = make_project(tmp_path, {
            "reliability/failpoints.py": FAILPOINTS_MODULE,
            "api/store.py": """\
                from repro.reliability.failpoints import fire

                def write():
                    fire("jobstore.wirte")
                """,
        })
        found = findings_of(FailpointRegistryRule(), root)
        messages = [f.message for f in found]
        assert len(found) == 3
        assert any("jobstore.wirte" in m and "not registered" in m
                   for m in messages)
        # neither registered site is fired -> both reported at the registry
        assert sum("no fire() call" in m for m in messages) == 2

    def test_accepts_matching_registry(self, tmp_path):
        root = make_project(tmp_path, {
            "reliability/failpoints.py": FAILPOINTS_MODULE,
            "api/store.py": """\
                from repro.reliability.failpoints import fire

                def write():
                    fire("jobstore.write")

                def request():
                    fire("http.request")
                """,
        })
        assert findings_of(FailpointRegistryRule(), root) == []

    def test_suppression_comment(self, tmp_path):
        root = make_project(tmp_path, {
            "reliability/failpoints.py": """\
                SITES = frozenset({"a.b"})

                def fire(site):
                    pass
                """,
            "api/store.py": """\
                from repro.reliability.failpoints import fire

                def write():
                    fire("a.b")
                    fire("a.c")  # repro-lint: disable=failpoint-registry
                """,
        })
        report = run_lint(root, rules=[FailpointRegistryRule()])
        assert report.findings == []
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# retry-safety
# --------------------------------------------------------------------- #
POLICY_MODULE = """\
    class RetryPolicy:
        def call(self, fn, **kwargs):
            return fn()
    """


class TestRetrySafetyRule:
    def test_flags_mutating_call_without_idempotent(self, tmp_path):
        root = make_project(tmp_path, {
            "reliability/policy.py": POLICY_MODULE,
            "api/client.py": """\
                from repro.reliability.policy import RetryPolicy

                class Client:
                    def __init__(self, store):
                        self._store_retry = RetryPolicy()
                        self.store = store

                    def submit(self, req):
                        return self._store_retry.call(
                            lambda: self.store.create(req))
                """,
        })
        found = findings_of(RetrySafetyRule(), root)
        assert len(found) == 1
        assert "create" in found[0].message
        assert "idempotent" in found[0].message

    def test_accepts_declared_idempotency_and_read_verbs(self, tmp_path):
        root = make_project(tmp_path, {
            "reliability/policy.py": POLICY_MODULE,
            "api/client.py": """\
                from repro.reliability.policy import RetryPolicy

                class Client:
                    def __init__(self, store):
                        self._store_retry = RetryPolicy()
                        self.store = store

                    def submit(self, req):
                        return self._store_retry.call(
                            lambda: self.store.create(req), idempotent=True)

                    def status(self, job_id):
                        return self._store_retry.call(
                            lambda: self.store.read(job_id))
                """,
        })
        assert findings_of(RetrySafetyRule(), root) == []

    def test_suppression_comment(self, tmp_path):
        root = make_project(tmp_path, {
            "reliability/policy.py": POLICY_MODULE,
            "api/client.py": """\
                from repro.reliability.policy import RetryPolicy

                retry_policy = RetryPolicy()

                def submit(store, req):
                    return retry_policy.call(lambda: store.submit(req))  # repro-lint: disable=retry-safety
                """,
        })
        report = run_lint(root, rules=[RetrySafetyRule()])
        assert report.findings == []
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# schema-drift
# --------------------------------------------------------------------- #
class TestSchemaDriftRule:
    def test_flags_asymmetric_wire_keys(self, tmp_path):
        root = make_project(tmp_path, {
            "api/protocol.py": """\
                class Envelope:
                    def to_wire(self):
                        return {"a": self.a, "b": self.b}

                    @classmethod
                    def from_wire(cls, payload):
                        return cls(a=payload.get("a"),
                                   c=payload.get("c"))
                """,
        })
        found = findings_of(SchemaDriftRule(), root)
        messages = [f.message for f in found]
        assert len(found) == 2
        assert any('"b"' in m and "never reads" in m for m in messages)
        assert any('"c"' in m and "never writes" in m for m in messages)

    def test_accepts_symmetric_envelope_modulo_bookkeeping(self, tmp_path):
        root = make_project(tmp_path, {
            "api/protocol.py": """\
                class Envelope:
                    def to_wire(self):
                        return {"schema_version": 1, "a": self.a}

                    @classmethod
                    def from_wire(cls, payload):
                        return cls(a=payload.get("a"))
                """,
        })
        assert findings_of(SchemaDriftRule(), root) == []

    def test_flags_add_row_arity_and_unknown_columns(self, tmp_path):
        root = make_project(tmp_path, {
            "batch/sweep.py": """\
                COORD_COLUMNS = ("graph", "zeed")
                SWEEP_COLUMNS = ("graph", "seed", "ok", "energy")

                def build(table, graph, seed, ok):
                    table.add_row(graph, seed, ok)
                """,
            "batch/merge.py": """\
                from repro.batch.sweep import COORD_COLUMNS

                def signature_columns():
                    return list(COORD_COLUMNS) + ["ok", "wattage"]
                """,
        })
        found = findings_of(SchemaDriftRule(), root)
        messages = [f.message for f in found]
        assert len(found) == 3
        assert any("passes 3 values" in m and "4 columns" in m
                   for m in messages)
        assert any('"zeed"' in m and "COORD_COLUMNS" in m for m in messages)
        assert any('"wattage"' in m for m in messages)

    def test_accepts_consistent_columns(self, tmp_path):
        root = make_project(tmp_path, {
            "batch/sweep.py": """\
                COORD_COLUMNS = ("graph", "seed")
                SWEEP_COLUMNS = ("graph", "seed", "ok", "energy")

                def build(table, graph, seed, ok, energy):
                    table.add_row(graph, seed, ok, energy)
                """,
            "batch/merge.py": """\
                from repro.batch.sweep import COORD_COLUMNS

                def signature_columns():
                    return list(COORD_COLUMNS) + ["ok", "energy"]
                """,
        })
        assert findings_of(SchemaDriftRule(), root) == []

    def test_suppression_comment(self, tmp_path):
        root = make_project(tmp_path, {
            "api/protocol.py": """\
                class Envelope:
                    def to_wire(self):  # repro-lint: disable=schema-drift
                        return {"a": self.a, "b": self.b}

                    @classmethod
                    def from_wire(cls, payload):  # repro-lint: disable=schema-drift
                        return cls(a=payload.get("a"))
                """,
        })
        report = run_lint(root, rules=[SchemaDriftRule()])
        assert report.findings == []
        assert report.suppressed == 1


# --------------------------------------------------------------------- #
# baseline ratchet
# --------------------------------------------------------------------- #
class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        root = make_project(tmp_path, {
            "api/store.py": """\
                def save(path, data):
                    path.write_text(data)
                """,
        })
        dirty = run_lint(root, rules=[AtomicWritesRule()])
        assert dirty.exit_code == 1
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, dirty.findings)
        accepted = run_lint(root, rules=[AtomicWritesRule()],
                            baseline_path=baseline)
        assert accepted.exit_code == 0
        assert len(accepted.baselined) == 1

    def test_stale_baseline_entries_fail(self, tmp_path):
        root = make_project(tmp_path, {
            "api/store.py": """\
                def load(path):
                    return path.read_text()
                """,
        })
        baseline = tmp_path / "baseline.json"
        stale = Finding(file="api/store.py", line=2, rule="atomic-writes",
                        message="gone")
        save_baseline(baseline, [stale])
        report = run_lint(root, rules=[AtomicWritesRule()],
                          baseline_path=baseline)
        assert report.findings == []
        assert report.stale_baseline == {stale.key}
        assert report.exit_code == 1

    def test_baseline_round_trip_and_validation(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = Finding(file="a.py", line=1, rule="r", message="m")
        save_baseline(path, [finding])
        assert load_baseline(path) == {finding.key}
        path.write_text("[]")
        with pytest.raises(InvalidParameterError):
            load_baseline(path)
        with pytest.raises(InvalidParameterError):
            load_baseline(tmp_path / "missing.json")


# --------------------------------------------------------------------- #
# CLI and meta
# --------------------------------------------------------------------- #
class TestLintCli:
    def test_json_reporter_and_exit_code(self, tmp_path, capsys):
        root = make_project(tmp_path, {
            "api/store.py": """\
                def save(path, data):
                    path.write_text(data)
                """,
        })
        code = main(["lint", "--root", str(root), "--no-baseline", "--json",
                     "--rule", "atomic-writes"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["exit_code"] == 1
        assert payload["rules"] == ["atomic-writes"]
        assert [f["rule"] for f in payload["findings"]] == ["atomic-writes"]
        assert payload["findings"][0]["file"] == "api/store.py"

    def test_unknown_rule_is_a_usage_error(self, tmp_path, capsys):
        root = make_project(tmp_path, {"api/x.py": "x = 1\n"})
        code = main(["lint", "--root", str(root), "--no-baseline",
                     "--rule", "no-such-rule"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unparseable_source_is_a_lint_failure(self, tmp_path, capsys):
        root = make_project(tmp_path, {"api/x.py": "def broken(:\n"})
        code = main(["lint", "--root", str(root), "--no-baseline"])
        assert code == 2
        assert "cannot lint" in capsys.readouterr().err

    def test_update_baseline_writes_and_accepts(self, tmp_path, capsys):
        root = make_project(tmp_path, {
            "api/store.py": """\
                def save(path, data):
                    path.write_text(data)
                """,
        })
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--root", str(root), "--baseline",
                     str(baseline), "--update-baseline"]) == 0
        assert main(["lint", "--root", str(root), "--baseline",
                     str(baseline)]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out


class TestTypeChecking:
    def test_mypy_strict_subset(self):
        mypy_api = pytest.importorskip(
            "mypy.api", reason="mypy is not installed in this environment")
        config = Path(__file__).resolve().parents[1] / "mypy.ini"
        out, err, code = mypy_api.run(["--config-file", str(config)])
        assert code == 0, f"mypy strict subset failed:\n{out}\n{err}"


class TestRepoInvariants:
    def test_rule_registry_is_complete(self):
        names = {rule.name for rule in ALL_RULES}
        assert names == {
            "typed-errors", "modeling-only-assembly", "atomic-writes",
            "lock-discipline", "failpoint-registry", "retry-safety",
            "schema-drift",
        }
        assert rules_by_name().keys() == names

    def test_shipped_package_lints_clean(self):
        root = Path(repro.__file__).resolve().parent
        report = run_lint(root)
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"repro lint found:\n{rendered}"
        assert report.files_checked > 100

    def test_checked_in_baseline_is_empty(self):
        baseline = Path(__file__).resolve().parents[1] / "lint-baseline.json"
        assert baseline.is_file()
        assert load_baseline(baseline) == set()
