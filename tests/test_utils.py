"""Tests for repro.utils (numerics, rng, tables, errors)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    InvalidGraphError,
    ReproError,
    Table,
    clamp,
    cube,
    cube_root,
    format_float,
    geq_with_tol,
    is_close,
    leq_with_tol,
    make_rng,
    safe_div,
    spawn_rngs,
)
from repro.utils.rng import choice_without_replacement, random_partition, shuffled
from repro.utils.tables import ascii_series_plot


class TestNumerics:
    def test_is_close_exact(self):
        assert is_close(1.0, 1.0)

    def test_is_close_within_tolerance(self):
        assert is_close(1.0, 1.0 + 1e-10)

    def test_is_close_rejects_distant(self):
        assert not is_close(1.0, 1.01)

    def test_leq_with_tol_strict(self):
        assert leq_with_tol(1.0, 2.0)

    def test_leq_with_tol_equal(self):
        assert leq_with_tol(2.0, 2.0)

    def test_leq_with_tol_slightly_above(self):
        assert leq_with_tol(2.0 + 1e-10, 2.0)

    def test_leq_with_tol_rejects(self):
        assert not leq_with_tol(2.1, 2.0)

    def test_geq_with_tol(self):
        assert geq_with_tol(2.0, 1.0)
        assert not geq_with_tol(1.0, 2.0)

    def test_clamp_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_clamp_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_clamp_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)

    def test_cube(self):
        assert cube(3.0) == 27.0

    def test_cube_root_inverts_cube(self):
        assert is_close(cube_root(27.0), 3.0)

    def test_cube_root_zero(self):
        assert cube_root(0.0) == 0.0

    def test_cube_root_negative_raises(self):
        with pytest.raises(ValueError):
            cube_root(-1.0)

    def test_safe_div_normal(self):
        assert safe_div(6.0, 3.0) == 2.0

    def test_safe_div_by_zero(self):
        assert safe_div(1.0, 0.0) == math.inf

    def test_safe_div_custom_default(self):
        assert safe_div(1.0, 0.0, default=0.0) == 0.0

    @given(st.floats(min_value=0.0, max_value=1e12))
    def test_cube_root_cube_roundtrip(self, x):
        assert is_close(cube_root(x) ** 3, x, rel_tol=1e-9, abs_tol=1e-9)

    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6))
    def test_leq_total_order_consistency(self, a, b):
        # at least one direction of the tolerant comparison must hold
        assert leq_with_tol(a, b) or leq_with_tol(b, a)


class TestRng:
    def test_make_rng_from_none(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_make_rng_from_int_reproducible(self):
        a = make_rng(7).integers(0, 1000, size=5)
        b = make_rng(7).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert list(a.integers(0, 10**6, size=4)) != list(b.integers(0, 10**6, size=4))

    def test_spawn_rngs_reproducible(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(3, 3)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(3, 3)]
        assert first == second

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_choice_without_replacement(self):
        rng = make_rng(1)
        out = choice_without_replacement(rng, list(range(10)), 4)
        assert len(out) == 4
        assert len(set(out)) == 4

    def test_choice_without_replacement_too_many(self):
        with pytest.raises(ValueError):
            choice_without_replacement(make_rng(0), [1, 2], 3)

    def test_random_partition_sums(self):
        rng = make_rng(2)
        sizes = random_partition(rng, 20, 4)
        assert sum(sizes) == 20
        assert len(sizes) == 4
        assert all(s >= 0 for s in sizes)

    def test_random_partition_invalid(self):
        with pytest.raises(ValueError):
            random_partition(make_rng(0), 10, 0)

    def test_shuffled_preserves_elements(self):
        rng = make_rng(3)
        items = list(range(15))
        out = shuffled(rng, items)
        assert sorted(out) == items


class TestTables:
    def test_add_row_positional(self):
        t = Table(columns=["a", "b"])
        t.add_row(1, 2.5)
        assert len(t) == 1

    def test_add_row_named(self):
        t = Table(columns=["a", "b"])
        t.add_row(b=2.0, a=1)
        assert t.rows[0] == [1, 2.0]

    def test_add_row_wrong_count(self):
        t = Table(columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_add_row_missing_named(self):
        t = Table(columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(a=1)

    def test_add_row_mixed_raises(self):
        t = Table(columns=["a"])
        with pytest.raises(ValueError):
            t.add_row(1, a=1)

    def test_to_ascii_contains_headers_and_values(self):
        t = Table(columns=["x", "energy"], title="demo")
        t.add_row(1, 3.14159)
        text = t.to_ascii()
        assert "demo" in text
        assert "energy" in text
        assert "3.142" in text

    def test_to_csv_roundtrip_lines(self):
        t = Table(columns=["x", "y"])
        t.add_row(1, 2.0)
        t.add_row(3, 4.0)
        lines = t.to_csv().strip().split("\n")
        assert lines[0] == "x,y"
        assert len(lines) == 3

    def test_column_extraction(self):
        t = Table(columns=["x", "y"])
        t.add_row(1, 10.0)
        t.add_row(2, 20.0)
        assert t.column("y") == [10.0, 20.0]

    def test_column_unknown(self):
        t = Table(columns=["x"])
        with pytest.raises(KeyError):
            t.column("z")

    def test_format_float_none(self):
        assert format_float(None) == "-"

    def test_format_float_bool(self):
        assert format_float(True) == "yes"
        assert format_float(False) == "no"

    def test_format_float_precision(self):
        assert format_float(3.14159, digits=3) == "3.14"

    def test_ascii_series_plot_contains_series(self):
        text = ascii_series_plot([1, 2], {"model": [1.0, 2.0]}, title="plot")
        assert "plot" in text
        assert "model" in text

    def test_ascii_series_plot_empty(self):
        assert ascii_series_plot([], {}, title="t") == "t\n"


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(InvalidGraphError, ReproError)

    def test_all_library_errors_are_repro_errors(self):
        from repro.utils.errors import (
            InfeasibleProblemError,
            InvalidModelError,
            InvalidSolutionError,
            SolverError,
        )

        for exc in (InfeasibleProblemError, InvalidModelError,
                    InvalidSolutionError, SolverError, InvalidGraphError):
            assert issubclass(exc, ReproError)
