"""Tests for the graph generators, SP decomposition and serialisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    generators,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_dot,
    graph_to_json,
    is_series_parallel,
    sp_decompose,
    SPLeaf,
    SPParallel,
    SPSeries,
)
from repro.graphs.sp_decomposition import NotSeriesParallelError, iter_leaves, sp_tree_depth
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError


class TestGenerators:
    def test_chain_structure(self):
        g = generators.chain(5, seed=0)
        assert g.n_tasks == 5
        assert g.n_edges == 4
        assert g.sources() == ["T1"]
        assert g.sinks() == ["T5"]

    def test_chain_explicit_works(self):
        g = generators.chain(3, works=[1.0, 2.0, 3.0])
        assert [g.work(f"T{i}") for i in (1, 2, 3)] == [1.0, 2.0, 3.0]

    def test_chain_wrong_work_count(self):
        with pytest.raises(InvalidGraphError):
            generators.chain(3, works=[1.0])

    def test_chain_needs_a_task(self):
        with pytest.raises(InvalidGraphError):
            generators.chain(0)

    def test_fork_structure(self):
        g = generators.fork(4, seed=1)
        assert g.n_tasks == 5
        assert g.sources() == ["T0"]
        assert set(g.successors("T0")) == {"T1", "T2", "T3", "T4"}
        assert all(g.out_degree(f"T{i}") == 0 for i in range(1, 5))

    def test_join_is_reversed_fork(self):
        g = generators.join(3, seed=2)
        assert g.sinks() == ["T0"]
        assert set(g.predecessors("T0")) == {"T1", "T2", "T3"}

    def test_fork_join_structure(self):
        g = generators.fork_join(4, seed=3)
        assert g.n_tasks == 6
        assert g.sources() == ["src"]
        assert g.sinks() == ["snk"]

    def test_diamond_structure(self):
        g = generators.diamond(3, 4, seed=4)
        assert g.n_tasks == 12
        assert g.has_edge("T0_0", "T1_0")
        assert g.has_edge("T0_0", "T0_1")
        assert g.is_dag()

    def test_diamond_invalid_dims(self):
        with pytest.raises(InvalidGraphError):
            generators.diamond(0, 3)

    def test_random_tree_out(self):
        g = generators.random_tree(20, seed=5)
        assert g.n_tasks == 20
        assert g.n_edges == 19
        assert len(g.sources()) == 1
        assert g.is_dag()

    def test_random_tree_in(self):
        g = generators.random_tree(15, seed=6, direction="in")
        assert len(g.sinks()) == 1
        assert g.n_edges == 14

    def test_random_tree_invalid_direction(self):
        with pytest.raises(InvalidGraphError):
            generators.random_tree(5, direction="sideways")

    def test_random_tree_max_children(self):
        g = generators.random_tree(30, seed=7, max_children=2)
        assert all(g.out_degree(n) <= 2 for n in g.task_names())

    def test_random_series_parallel_is_sp(self):
        g = generators.random_series_parallel(20, seed=8)
        assert g.n_tasks == 20
        assert is_series_parallel(g)

    def test_layered_dag_connectivity(self):
        g = generators.layered_dag(30, seed=9, layers=5)
        assert g.n_tasks == 30
        assert g.is_dag()
        # every non-first-layer task has at least one predecessor
        sources = set(g.sources())
        for n in g.task_names():
            if n not in sources:
                assert g.in_degree(n) >= 1

    def test_layered_dag_single_layer(self):
        g = generators.layered_dag(5, seed=10, layers=1)
        assert g.n_edges == 0

    def test_erdos_dag_acyclic(self):
        g = generators.erdos_dag(25, seed=11, edge_probability=0.3)
        assert g.is_dag()

    def test_erdos_invalid_probability(self):
        with pytest.raises(InvalidGraphError):
            generators.erdos_dag(5, edge_probability=1.5)

    def test_generators_are_reproducible(self):
        a = generators.layered_dag(20, seed=42)
        b = generators.layered_dag(20, seed=42)
        assert a.edges() == b.edges()
        assert a.works() == b.works()

    def test_work_samplers(self):
        from repro.utils.rng import make_rng

        rng = make_rng(0)
        u = generators.uniform_works(2.0, 3.0)
        assert 2.0 <= u(rng) <= 3.0
        c = generators.constant_works(5.0)
        assert c(rng) == 5.0
        ln = generators.lognormal_works(1.0, 0.1)
        assert ln(rng) > 0

    def test_work_sampler_validation(self):
        with pytest.raises(InvalidGraphError):
            generators.uniform_works(0.0, 1.0)
        with pytest.raises(InvalidGraphError):
            generators.constant_works(-1.0)
        with pytest.raises(InvalidGraphError):
            generators.lognormal_works(1.0, -0.1)

    def test_graph_classes_registry(self):
        for name, builder in generators.GRAPH_CLASSES.items():
            g = builder(8, seed=1)
            assert g.n_tasks >= 1, name
            assert g.is_dag(), name

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_all_generated_works_positive(self, n, seed):
        g = generators.layered_dag(n, seed=seed)
        assert all(t.work > 0 for t in g.tasks())


class TestSPDecomposition:
    def test_single_task_is_leaf(self):
        g = TaskGraph(tasks=[("A", 2.0)])
        node = sp_decompose(g)
        assert isinstance(node, SPLeaf)
        assert node.work == 2.0

    def test_chain_is_series(self):
        g = generators.chain(4, works=[1.0] * 4)
        node = sp_decompose(g)
        assert isinstance(node, SPSeries)
        assert sorted(node.leaves()) == ["T1", "T2", "T3", "T4"]

    def test_independent_tasks_are_parallel(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0), ("C", 1.0)])
        node = sp_decompose(g)
        assert isinstance(node, SPParallel)
        assert len(node.children) == 3

    def test_fork_decomposition(self):
        g = generators.fork(3, source_work=1.0, works=[1.0, 2.0, 3.0])
        node = sp_decompose(g)
        assert isinstance(node, SPSeries)
        assert isinstance(node.children[0], SPLeaf)
        assert isinstance(node.children[1], SPParallel)

    def test_tree_is_sp_decomposable(self):
        g = generators.random_tree(25, seed=1)
        assert is_series_parallel(g)

    def test_fork_join_is_sp(self):
        g = generators.fork_join(5, seed=2)
        assert is_series_parallel(g)

    def test_diamond_is_not_sp(self):
        g = generators.diamond(3, 3, seed=3)
        assert not is_series_parallel(g)
        with pytest.raises(NotSeriesParallelError):
            sp_decompose(g)

    def test_leaves_cover_all_tasks(self):
        g = generators.random_series_parallel(30, seed=4)
        node = sp_decompose(g)
        assert sorted(node.leaves()) == sorted(g.task_names())
        assert node.size() == 30

    def test_iter_leaves_and_depth(self):
        g = generators.random_series_parallel(12, seed=5)
        node = sp_decompose(g)
        leaves = list(iter_leaves(node))
        assert len(leaves) == 12
        assert sp_tree_depth(node) >= 2

    def test_empty_graph_rejected(self):
        with pytest.raises(InvalidGraphError):
            sp_decompose(TaskGraph())

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_generator_sp_graphs_always_decompose(self, n, seed):
        g = generators.random_series_parallel(n, seed=seed)
        node = sp_decompose(g)
        assert sorted(node.leaves()) == sorted(g.task_names())

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_trees_always_decompose(self, n, seed):
        g = generators.random_tree(n, seed=seed)
        assert is_series_parallel(g)


class TestSerialisation:
    def test_dict_roundtrip(self):
        g = generators.layered_dag(15, seed=0)
        back = graph_from_dict(graph_to_dict(g))
        assert set(back.task_names()) == set(g.task_names())
        assert set(back.edges()) == set(g.edges())
        assert back.works() == pytest.approx(g.works())

    def test_json_roundtrip(self):
        g = generators.fork(3, seed=1)
        back = graph_from_json(graph_to_json(g))
        assert back.works() == pytest.approx(g.works())

    def test_from_dict_missing_tasks_key(self):
        with pytest.raises(InvalidGraphError):
            graph_from_dict({"edges": []})

    def test_from_dict_malformed_edge(self):
        with pytest.raises(InvalidGraphError):
            graph_from_dict({"tasks": {"A": 1.0}, "edges": [["A"]]})

    def test_from_json_invalid_text(self):
        with pytest.raises(InvalidGraphError):
            graph_from_json("not json at all {")

    def test_dot_output_mentions_every_task_and_edge(self):
        g = generators.chain(3, works=[1.0, 2.0, 3.0])
        dot = graph_to_dot(g)
        for name in g.task_names():
            assert f'"{name}"' in dot
        assert '"T1" -> "T2"' in dot
        assert dot.startswith("digraph")

    def test_dot_without_work_labels(self):
        g = generators.chain(2, works=[1.0, 2.0])
        dot = graph_to_dot(g, label_work=False)
        assert "w=" not in dot
