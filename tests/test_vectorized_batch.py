"""Tests for the vectorized batch solve path and the solve API.

Covers: the struct-of-arrays batch solver against the scalar reference on
every closed-form graph class (energies and speeds within 1e-9 over
randomized instances, alphas and slacks), the fallback routes (convex-only
graphs, s_max saturation, infeasible instances, non-continuous models),
the micro-batcher's coalescing guarantee (N concurrent submissions cost
far fewer than N ticks), the SolveRequest/SolveResponse wire envelopes,
the binary row codec (round-trip plus malformed-frame rejection), solve /
solve_batch parity across the Local, Disk and HTTP transports, and
``repro solve --url``.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.api import (
    DiskTransport,
    HTTPTransport,
    LocalTransport,
    SolveRequest,
    SolveResponse,
    SolverClient,
    decode_rows,
    encode_rows,
)
from repro.batch import solve_batch, spec_from_graph_dict, spec_from_problem
from repro.cli import main
from repro.core.models import ContinuousModel, DiscreteModel
from repro.core.power import CUBIC, PowerLaw
from repro.core.problem import MinEnergyProblem
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.graphs.io import graph_to_dict, graph_to_json
from repro.server import SolverHTTPServer
from repro.service import MicroBatcher, SolverService
from repro.solve import solve as scalar_solve
from repro.utils.errors import (
    InfeasibleProblemError,
    InvalidGraphError,
    InvalidOptionError,
    TransportError,
)

GRAPH_CLASSES = {
    "chain": lambda seed: generators.chain(7, seed=seed),
    "fork": lambda seed: generators.fork(6, seed=seed),
    "join": lambda seed: generators.join(6, seed=seed),
    "fork_join": lambda seed: generators.fork_join(5, seed=seed),
    "random_tree": lambda seed: generators.random_tree(14, seed=seed),
    "random_sp": lambda seed: generators.random_series_parallel(12, seed=seed),
    "layered_dag": lambda seed: generators.layered_dag(10, seed=seed),
}


def make_problem(graph, *, slack=1.6, s_max=2.0, alpha=3.0):
    # critical path at unit speed for uncapped models, else at the cap
    pace = 1.0 if s_max == float("inf") else s_max
    deadline = slack * longest_path_length(
        graph, weight=lambda n: graph.work(n) / pace)
    power = CUBIC if alpha == 3.0 else PowerLaw(alpha=alpha)
    return MinEnergyProblem(graph=graph, deadline=deadline,
                            model=ContinuousModel(s_max=s_max), power=power)


@pytest.fixture(scope="module")
def http_server(tmp_path_factory):
    transport = DiskTransport(tmp_path_factory.mktemp("solve-server-jobs"),
                              use_threads=True)
    with SolverHTTPServer(transport, batch_window_ms=5.0).start() as server:
        yield server


class TestVectorizedVsScalar:
    @pytest.mark.parametrize("alpha", [2.0, 3.0])
    @pytest.mark.parametrize("slack", [1.25, 2.5])
    def test_matches_scalar_on_every_class(self, alpha, slack):
        problems = [make_problem(build(seed), slack=slack, alpha=alpha)
                    for build in GRAPH_CLASSES.values()
                    for seed in (3, 11)]
        rows = solve_batch(problems, keep_speeds=True)
        vectorized = 0
        for problem, row in zip(problems, rows):
            reference = scalar_solve(problem)
            assert row.ok, (problem.graph.name, row.error)
            assert row.energy == pytest.approx(reference.energy, abs=1e-9,
                                               rel=1e-9)
            for task, speed in reference.speeds().items():
                assert row.speeds[task] == pytest.approx(speed, abs=1e-9,
                                                         rel=1e-9)
            vectorized += bool(row.metadata.get("vectorized"))
        # the vector path must carry real traffic; how much depends on how
        # many instances saturate the cap (those fall back per instance,
        # and the parity checks above already proved them equal)
        assert vectorized >= 1

    def test_uncapped_model_and_wire_specs(self):
        graph = generators.random_tree(16, seed=5)
        problem = make_problem(graph, s_max=float("inf"), slack=1.0)
        spec = spec_from_graph_dict(graph_to_dict(graph),
                                    deadline=problem.deadline, alpha=3.0,
                                    s_max=float("inf"), name="wire")
        rows = solve_batch([problem, spec], keep_speeds=True)
        reference = scalar_solve(problem)
        for row in rows:
            assert row.ok and row.metadata.get("vectorized")
            assert row.energy == pytest.approx(reference.energy, rel=1e-9)

    def test_saturated_instances_fall_back_exactly(self):
        # slack 1.05 forces speeds at/over the cap on some instances:
        # those must fall back to the scalar solver and agree with it
        problems = [make_problem(generators.fork(5, seed=s), slack=1.05,
                                 s_max=1.0) for s in range(6)]
        rows = solve_batch(problems)
        assert any(not r.metadata.get("vectorized") for r in rows if r.ok)
        for problem, row in zip(problems, rows):
            if row.ok:
                assert row.energy == pytest.approx(
                    scalar_solve(problem).energy, rel=1e-9)

    def test_infeasible_and_invalid_are_rows_not_raises(self):
        bad = MinEnergyProblem(graph=generators.chain(4),
                               deadline=1e-4, model=ContinuousModel(s_max=1.0))
        good = make_problem(generators.chain(4))
        rows = solve_batch([bad, good])
        assert not rows[0].ok
        assert rows[0].error_type == "InfeasibleProblemError"
        assert rows[1].ok

    def test_non_continuous_models_use_the_scalar_engine(self):
        graph = generators.chain(4)
        problem = MinEnergyProblem(
            graph=graph, deadline=2.0 * longest_path_length(graph),
            model=DiscreteModel(modes=(0.4, 0.7, 1.0)))
        (row,) = solve_batch([problem])
        assert row.ok and not row.metadata.get("vectorized")
        assert row.energy == pytest.approx(scalar_solve(problem).energy)

    def test_validate_reproduces_the_deadline(self):
        problem = make_problem(generators.random_tree(12, seed=2))
        (row,) = solve_batch([problem], validate=True, keep_speeds=True)
        assert row.ok and row.makespan == pytest.approx(problem.deadline)

    def test_malformed_graph_dict_is_rejected(self):
        with pytest.raises(InvalidGraphError):
            spec_from_graph_dict({"tasks": {"a": 1.0},
                                  "edges": [["a", "missing"]]},
                                 deadline=1.0, alpha=3.0,
                                 s_max=1.0, name="bad")

    def test_spec_from_problem_round_trips_the_name(self):
        problem = make_problem(generators.random_tree(6, seed=9))
        spec = spec_from_problem(problem)
        assert spec.n_tasks == 6
        assert spec.display_name == problem.name


class TestMicroBatcherCoalescing:
    def test_concurrent_submits_share_ticks(self):
        problems = [make_problem(generators.random_tree(8, seed=s))
                    for s in range(40)]
        with MicroBatcher(window_ms=25.0) as batcher:
            results: list = [None] * len(problems)

            def run(i):
                results[i] = batcher.solve(problems[i])

            threads = [threading.Thread(target=run, args=(i,))
                       for i in range(len(problems))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = batcher.stats()
        assert all(r.ok for r in results)
        assert stats["submitted"] == len(problems)
        # the whole point: far fewer ticks than submissions
        assert stats["ticks"] < len(problems) / 2
        assert stats["mean_occupancy"] > 1.0

    def test_closed_batcher_rejects_submissions(self):
        batcher = MicroBatcher()
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(make_problem(generators.chain(3)))

    def test_service_solve_routes_large_instances_directly(self):
        with SolverService(workers=1, use_threads=True) as service:
            small = service.solve(make_problem(generators.chain(5)))
            big = service.solve(
                make_problem(generators.random_tree(400, seed=1)))
            assert small.ok and big.ok
            stats = service.batch_stats()
            # only the small instance went through the batcher queue
            assert stats["submitted"] >= 1


class TestSolveEnvelopes:
    def test_request_round_trip(self):
        problem = make_problem(generators.random_tree(9, seed=4))
        request = SolveRequest.from_problem(problem, keep_speeds=True)
        again = SolveRequest.from_wire(
            json.loads(json.dumps(request.to_wire())))
        assert again == request
        rebuilt = again.build_problem()
        assert rebuilt.deadline == pytest.approx(problem.deadline)

    def test_request_needs_exactly_one_deadline_form(self):
        graph = graph_to_dict(generators.chain(3))
        with pytest.raises(InvalidOptionError):
            SolveRequest(graph=graph)
        with pytest.raises(InvalidOptionError):
            SolveRequest(graph=graph, deadline=1.0, slack=1.5)

    def test_request_rejects_unknown_fields(self):
        wire = SolveRequest(graph=graph_to_dict(generators.chain(3)),
                            deadline=5.0).to_wire()
        wire["surprise"] = 1
        with pytest.raises(TransportError):
            SolveRequest.from_wire(wire)

    def test_response_round_trip_and_typed_reraise(self):
        response = SolveResponse.from_failure(
            InfeasibleProblemError("too tight"), name="x", n_tasks=3)
        again = SolveResponse.from_wire(
            json.loads(json.dumps(response.to_wire())))
        with pytest.raises(InfeasibleProblemError):
            again.raise_for_error()

    def test_codec_round_trip_with_speeds(self):
        rows = [SolveResponse(ok=True, name="a", n_tasks=2, energy=1.5,
                              makespan=2.0, solver="s1", optimal=True,
                              seconds=0.01),
                SolveResponse.from_failure(ValueError("boom"), name="b"),
                SolveResponse(ok=True, name="c", n_tasks=1, energy=0.5,
                              makespan=1.0, solver="s1", optimal=True,
                              seconds=0.02)]
        frame = encode_rows(rows, speeds_vectors=[
            np.array([1.0, 2.0]), None, np.array([0.5])])
        decoded = decode_rows(json.loads(json.dumps(frame)),
                              task_names=[["t0", "t1"], None, ["u0"]])
        assert decoded[0].speeds == {"t0": 1.0, "t1": 2.0}
        assert decoded[1].error_type == "ValueError" and not decoded[1].ok
        assert decoded[2].speeds == {"u0": 0.5}
        assert [r.energy for r in decoded] == [1.5, None, 0.5]

    @pytest.mark.parametrize("mutate", [
        lambda f: f.update(kind="nope"),
        lambda f: f.update(columns=["ok"]),
        lambda f: f.update(data="@@@not-base64@@@"),
        lambda f: f.update(count=99),
    ])
    def test_codec_rejects_malformed_frames(self, mutate):
        frame = encode_rows([SolveResponse(ok=True, name="a", n_tasks=1,
                                           energy=1.0, makespan=1.0,
                                           solver="s", seconds=0.0)])
        mutate(frame)
        with pytest.raises(TransportError):
            decode_rows(frame)


class TestTransportParity:
    @pytest.fixture
    def make_client(self, tmp_path, http_server):
        opened = []

        def build(kind: str) -> SolverClient:
            if kind == "local":
                client = SolverClient(LocalTransport(workers=1,
                                                     use_threads=True))
            elif kind == "disk":
                client = SolverClient(DiskTransport(tmp_path / "jobs",
                                                    use_threads=True))
            else:
                client = SolverClient(HTTPTransport(http_server.url))
            opened.append(client)
            return client

        yield build
        for client in opened:
            client.close()

    @pytest.mark.parametrize("kind", ["local", "disk", "http"])
    def test_solve_matches_the_scalar_reference(self, make_client, kind):
        client = make_client(kind)
        for name in ("random_tree", "layered_dag"):  # vector + convex routes
            problem = make_problem(GRAPH_CLASSES[name](seed=8))
            response = client.solve(problem)
            reference = scalar_solve(problem)
            assert response.ok
            assert response.energy == pytest.approx(reference.energy,
                                                    rel=1e-9)
            assert response.speeds and len(response.speeds) == \
                problem.graph.n_tasks

    @pytest.mark.parametrize("kind", ["local", "disk", "http"])
    def test_solve_batch_is_transport_identical(self, make_client, kind):
        problems = [make_problem(build(seed))
                    for build in GRAPH_CLASSES.values() for seed in (1, 2)]
        client = make_client(kind)
        rows = client.solve_batch(problems, keep_speeds=True)
        assert len(rows) == len(problems)
        for problem, row in zip(problems, rows):
            reference = scalar_solve(problem)
            assert row.ok, (kind, problem.graph.name, row.error)
            assert row.energy == pytest.approx(reference.energy, rel=1e-9)
            for task, speed in reference.speeds().items():
                assert row.speeds[task] == pytest.approx(speed, abs=1e-9,
                                                         rel=1e-9)

    @pytest.mark.parametrize("kind", ["local", "disk", "http"])
    def test_batch_errors_are_rows_and_solo_errors_raise(self, make_client,
                                                         kind):
        client = make_client(kind)
        bad = MinEnergyProblem(graph=generators.chain(4), deadline=1e-4,
                               model=ContinuousModel(s_max=1.0))
        good = make_problem(generators.chain(4))
        rows = client.solve_batch([bad, good])
        assert not rows[0].ok
        assert rows[0].error_type == "InfeasibleProblemError"
        assert rows[1].ok and rows[1].speeds is None
        with pytest.raises(InfeasibleProblemError):
            client.solve(bad)

    def test_http_batch_coalesces_concurrent_singles(self, http_server):
        client = SolverClient(HTTPTransport(http_server.url))
        problems = [make_problem(generators.random_tree(8, seed=s))
                    for s in range(24)]
        before = json.loads(__import__("urllib.request", fromlist=["request"])
                            .urlopen(http_server.url + "/v1/batch_stats")
                            .read())
        results: list = [None] * len(problems)

        def run(i):
            results[i] = client.solve(problems[i])

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(len(problems))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        after = json.loads(__import__("urllib.request", fromlist=["request"])
                           .urlopen(http_server.url + "/v1/batch_stats")
                           .read())
        assert all(r.ok for r in results)
        assert after["submitted"] - before["submitted"] >= len(problems)
        assert after["ticks"] - before["ticks"] < len(problems)


class TestSolveCLI:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "tree.json"
        path.write_text(graph_to_json(generators.random_tree(10, seed=6)))
        return path

    def test_solve_url_matches_local(self, graph_file, http_server, capsys):
        assert main(["solve", str(graph_file), "--slack", "1.5"]) == 0
        local = json.loads(capsys.readouterr().out)
        assert main(["solve", str(graph_file), "--slack", "1.5",
                     "--url", http_server.url]) == 0
        remote = json.loads(capsys.readouterr().out)
        assert remote == local
        assert remote["energy"] == pytest.approx(local["energy"])
        assert len(remote["speeds"]) == 10
