"""Tests for the Vdd-Hopping solvers (Theorem 3) and the simplex backend."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.continuous.bounds import continuous_lower_bound
from repro.core.models import ContinuousModel, VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import HoppingAssignment
from repro.core.validation import check_solution
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InfeasibleProblemError, InvalidModelError, SolverError
from repro.vdd import (
    build_vdd_lp,
    solve_lp_simplex,
    solve_vdd_hopping,
    solve_vdd_lp,
    solve_vdd_mixing,
    two_mode_mix,
)


def _problem(graph, slack, modes=(0.4, 0.7, 1.0)):
    model = VddHoppingModel(modes=modes)
    min_makespan = longest_path_length(graph) / model.max_speed
    return MinEnergyProblem(graph=graph, deadline=slack * min_makespan, model=model)


class TestSimplex:
    def test_simple_lp(self):
        # minimise -x - y  s.t.  x + y <= 4, x <= 3, y <= 2, x,y >= 0
        c = np.array([-1.0, -1.0])
        a_ub = np.array([[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]])
        b_ub = np.array([4.0, 3.0, 2.0])
        result = solve_lp_simplex(c, a_ub=a_ub, b_ub=b_ub)
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-4.0)

    def test_equality_constraints(self):
        # minimise x + 2y  s.t.  x + y == 3, x,y >= 0  ->  x=3, y=0
        c = np.array([1.0, 2.0])
        result = solve_lp_simplex(c, a_eq=np.array([[1.0, 1.0]]), b_eq=np.array([3.0]))
        assert result.objective == pytest.approx(3.0)
        assert result.x[0] == pytest.approx(3.0)

    def test_infeasible(self):
        # x <= 1 and x == 2
        c = np.array([1.0])
        result = solve_lp_simplex(c, a_ub=np.array([[1.0]]), b_ub=np.array([1.0]),
                                  a_eq=np.array([[1.0]]), b_eq=np.array([2.0]))
        assert result.status == "infeasible"

    def test_unbounded(self):
        # minimise -x with only x >= 0
        c = np.array([-1.0])
        with pytest.raises(SolverError):
            solve_lp_simplex(c, a_ub=np.array([[-1.0]]), b_ub=np.array([0.0]))

    def test_no_constraints(self):
        result = solve_lp_simplex(np.array([1.0, 2.0]))
        assert result.objective == 0.0

    def test_redundant_equalities(self):
        # duplicated equality rows must not break phase two
        c = np.array([1.0, 1.0])
        a_eq = np.array([[1.0, 1.0], [2.0, 2.0]])
        b_eq = np.array([2.0, 4.0])
        result = solve_lp_simplex(c, a_eq=a_eq, b_eq=b_eq)
        assert result.objective == pytest.approx(2.0)

    def test_agrees_with_scipy_on_random_lps(self):
        from scipy import optimize

        rng = np.random.default_rng(0)
        for _ in range(10):
            n, m = 6, 4
            c = rng.uniform(0.1, 2.0, size=n)
            a_ub = rng.uniform(-1.0, 1.0, size=(m, n))
            b_ub = rng.uniform(1.0, 3.0, size=m)
            ours = solve_lp_simplex(c, a_ub=a_ub, b_ub=b_ub)
            ref = optimize.linprog(c, A_ub=a_ub, b_ub=b_ub, method="highs")
            assert ours.status == "optimal"
            assert ours.objective == pytest.approx(ref.fun, abs=1e-7)


class TestTwoModeMix:
    def test_mix_preserves_work_and_duration(self):
        segments = two_mode_mix(work=3.0, duration=4.0, s_low=0.5, s_high=1.0)
        assert sum(s * t for s, t in segments) == pytest.approx(3.0)
        assert sum(t for _s, t in segments) == pytest.approx(4.0)

    def test_mix_single_mode_when_equal(self):
        segments = two_mode_mix(work=2.0, duration=4.0, s_low=0.5, s_high=0.5)
        assert segments == [(0.5, pytest.approx(4.0))]

    def test_mix_rejects_unbracketed_speed(self):
        with pytest.raises(InvalidModelError):
            two_mode_mix(work=10.0, duration=4.0, s_low=0.5, s_high=1.0)  # ideal 2.5

    def test_mix_rejects_bad_duration(self):
        with pytest.raises(InvalidModelError):
            two_mode_mix(work=1.0, duration=0.0, s_low=0.5, s_high=1.0)

    @given(st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=0.1, max_value=5.0),
           st.floats(min_value=0.1, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_mix_energy_below_upper_mode_energy(self, work, s_low, gap, frac):
        """Mixing never costs more than running everything at the upper mode
        for the same work (the upper mode is faster, hence more expensive per
        unit of work)."""
        s_high = s_low + gap + 1e-3
        ideal = s_low + frac * (s_high - s_low)
        duration = work / ideal
        segments = two_mode_mix(work, duration, s_low, s_high)
        energy = sum(s ** 3 * t for s, t in segments)
        upper_energy = work * s_high ** 2
        assert energy <= upper_energy * (1 + 1e-9)


class TestVddLP:
    def test_lp_dimensions(self, small_sp_graph):
        p = _problem(small_sp_graph, 1.5)
        lp = build_vdd_lp(p)
        n, m = small_sp_graph.n_tasks, 3
        assert lp.c.size == n * m + n
        assert lp.a_eq.shape == (n, n * m + n)
        assert lp.a_ub.shape[0] == small_sp_graph.n_edges + n

    def test_lp_requires_vdd_model(self, small_sp_graph):
        p = MinEnergyProblem(graph=small_sp_graph, deadline=100.0,
                             model=ContinuousModel())
        with pytest.raises(InvalidModelError):
            build_vdd_lp(p)

    def test_single_task_two_modes_matches_hand_computation(self):
        # one task, work 1, modes {1, 2}, deadline 0.75:
        # run a at speed 1 and b at speed 2 with a + b = 0.75, a + 2b = 1
        # -> b = 0.25, a = 0.5; energy = 0.5 * 1 + 0.25 * 8 = 2.5
        g = TaskGraph(tasks=[("A", 1.0)])
        p = MinEnergyProblem(graph=g, deadline=0.75,
                             model=VddHoppingModel(modes=(1.0, 2.0)))
        s = solve_vdd_lp(p)
        assert s.energy == pytest.approx(2.5, rel=1e-6)
        check_solution(s)

    def test_lp_optimum_between_continuous_and_discrete(self, small_layered_dag):
        modes = (0.4, 0.7, 1.0)
        p = _problem(small_layered_dag, 1.4, modes=modes)
        lp = solve_vdd_lp(p)
        check_solution(lp)
        lb = continuous_lower_bound(p)
        assert lp.energy >= lb * (1 - 1e-6)
        from repro.discrete.heuristics import solve_discrete_best_heuristic
        from repro.core.models import DiscreteModel

        disc = solve_discrete_best_heuristic(p.with_model(DiscreteModel(modes=modes)))
        assert lp.energy <= disc.energy * (1 + 1e-6)

    def test_lp_backends_agree(self, small_sp_graph):
        p = _problem(small_sp_graph, 1.5)
        highs = solve_vdd_lp(p, backend="highs")
        simplex = solve_vdd_lp(p, backend="simplex")
        assert highs.energy == pytest.approx(simplex.energy, rel=1e-6)
        check_solution(simplex)

    def test_unknown_backend(self, small_sp_graph):
        p = _problem(small_sp_graph, 1.5)
        with pytest.raises(SolverError):
            solve_vdd_lp(p, backend="quantum")

    def test_infeasible_instance(self, small_chain):
        model = VddHoppingModel(modes=(0.5, 1.0))
        p = MinEnergyProblem(graph=small_chain, deadline=1.0, model=model)
        with pytest.raises(InfeasibleProblemError):
            solve_vdd_lp(p)

    def test_returns_hopping_assignment(self, small_sp_graph):
        p = _problem(small_sp_graph, 1.5)
        s = solve_vdd_lp(p)
        assert isinstance(s.assignment, HoppingAssignment)
        assert s.optimal

    def test_each_task_uses_at_most_two_modes_in_some_optimum(self, small_layered_dag):
        """The LP optimum found by HiGHS (a vertex solution) mixes at most
        two modes per task — the paper's 'mix two consecutive modes' remark."""
        p = _problem(small_layered_dag, 1.4)
        s = solve_vdd_lp(p)
        for task, segs in s.assignment.segments.items():
            used = [mode for mode, t in segs if t > 1e-9]
            assert len(used) <= 2, f"task {task} mixes {len(used)} modes"


class TestVddMixingAndDispatch:
    def test_mixing_feasible_and_above_lp(self, small_layered_dag):
        p = _problem(small_layered_dag, 1.4)
        mixing = solve_vdd_mixing(p)
        lp = solve_vdd_lp(p)
        check_solution(mixing)
        assert mixing.energy >= lp.energy * (1 - 1e-9)

    def test_mixing_exact_when_continuous_speed_is_a_mode(self):
        # chain with total work 2 and deadline 4 -> continuous speed 0.5, a mode
        g = generators.chain(2, works=[1.0, 1.0])
        p = MinEnergyProblem(graph=g, deadline=4.0,
                             model=VddHoppingModel(modes=(0.5, 1.0)))
        mixing = solve_vdd_mixing(p)
        lp = solve_vdd_lp(p)
        assert mixing.energy == pytest.approx(lp.energy, rel=1e-9)

    def test_mixing_handles_ideal_below_slowest_mode(self):
        g = TaskGraph(tasks=[("A", 1.0)])
        p = MinEnergyProblem(graph=g, deadline=10.0,
                             model=VddHoppingModel(modes=(0.5, 1.0)))
        s = solve_vdd_mixing(p)
        # forced to the slowest mode
        assert s.assignment.segments["A"] == [(0.5, pytest.approx(2.0))]
        check_solution(s)

    def test_mixing_requires_vdd_model(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=100.0, model=ContinuousModel())
        with pytest.raises(InvalidModelError):
            solve_vdd_mixing(p)

    def test_dispatch_methods(self, small_sp_graph):
        p = _problem(small_sp_graph, 1.5)
        assert solve_vdd_hopping(p).solver.startswith("vdd-lp")
        assert solve_vdd_hopping(p, method="mixing").solver == "vdd-two-mode-mixing"
        with pytest.raises(InvalidModelError):
            solve_vdd_hopping(p, method="telepathy")

    @given(st.integers(min_value=2, max_value=14),
           st.floats(min_value=1.1, max_value=3.0),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_lp_between_continuous_bound_and_mixing(self, n, slack, seed):
        g = generators.layered_dag(n, seed=seed)
        p = _problem(g, slack)
        lp = solve_vdd_lp(p)
        mixing = solve_vdd_mixing(p)
        lb = continuous_lower_bound(p)
        check_solution(lp)
        assert lb * (1 - 1e-6) <= lp.energy <= mixing.energy * (1 + 1e-6)
