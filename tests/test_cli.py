"""Tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graphs import generators, graph_to_json


@pytest.fixture
def graph_file(tmp_path):
    graph = generators.layered_dag(12, seed=3)
    path = tmp_path / "graph.json"
    path.write_text(graph_to_json(graph))
    return path


class TestSolveCommand:
    def test_continuous_solve(self, graph_file, capsys):
        code = main(["solve", str(graph_file), "--model", "continuous", "--slack", "1.5"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "continuous"
        assert payload["energy"] > 0
        assert payload["makespan"] <= payload["deadline"] * (1 + 1e-6)
        assert len(payload["speeds"]) == 12

    def test_discrete_solve_with_modes(self, graph_file, capsys):
        code = main(["solve", str(graph_file), "--model", "discrete",
                     "--modes", "0.5,1.0", "--slack", "1.6"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["speeds"].values()) <= {0.5, 1.0}

    def test_vdd_solve_with_absolute_deadline(self, graph_file, capsys):
        graph = generators.layered_dag(12, seed=3)
        deadline = 1.5 * sum(graph.works().values())
        code = main(["solve", str(graph_file), "--model", "vdd",
                     "--modes", "0.4,0.7,1.0", "--deadline", str(deadline)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solver"].startswith("vdd")

    def test_incremental_solve_default_grid(self, graph_file, capsys):
        code = main(["solve", str(graph_file), "--model", "incremental", "--slack", "1.5"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "incremental"

    def test_bad_modes_reported(self, graph_file, capsys):
        code = main(["solve", str(graph_file), "--model", "discrete", "--modes", "a,b"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_graph_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["solve", str(tmp_path / "missing.json")])

    def test_infeasible_reported_as_error(self, graph_file, capsys):
        code = main(["solve", str(graph_file), "--model", "discrete",
                     "--modes", "0.5,1.0", "--deadline", "0.001"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestExperimentCommand:
    def test_list_experiments(self, capsys):
        code = main(["experiment", "--list"])
        assert code == 0
        out = capsys.readouterr().out
        for key in ("E1", "E5", "E10"):
            assert key in out

    def test_no_id_lists_experiments(self, capsys):
        assert main(["experiment"]) == 0
        assert "E1" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        code = main(["experiment", "E99"])
        assert code == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(["solve", "g.json", "--model", "vdd"])
        assert args.command == "solve"
        assert args.model == "vdd"
        args = parser.parse_args(["experiment", "E3", "--csv"])
        assert args.experiment_id == "E3"
        assert args.csv
        args = parser.parse_args(["sweep", "--shard", "2/3", "--out", "s.json"])
        assert args.shard == "2/3" and args.out == "s.json"
        args = parser.parse_args(["merge", "a.json", "b.json", "--csv"])
        assert args.dumps == ["a.json", "b.json"]
        args = parser.parse_args(["solve", "g.json", "--backend", "simplex"])
        assert args.backend == "simplex"
        args = parser.parse_args(["backends", "--json"])
        assert args.command == "backends" and args.json


class TestBackendsCommand:
    def test_lists_registered_backends_with_availability(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("highs", "simplex", "mehrotra-ipm", "cvxpy"):
            assert name in out
        assert "registered backend(s)" in out
        # the probe-gated optional entries always appear, marked either way
        assert "optional" in out

    def test_json_output_matches_the_live_registry(self, capsys):
        from repro.modeling import BACKENDS

        assert main(["backends", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["name"] for e in entries} == set(BACKENDS.names())
        assert len(entries) >= 4
        highs = next(e for e in entries if e["name"] == "highs")
        assert highs["available"] and "vdd-hopping/lp" in highs["routes"]

    def test_solve_backend_flag_routes_to_the_registry(self, graph_file, capsys):
        code = main(["solve", str(graph_file), "--model", "vdd",
                     "--backend", "simplex"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solver"] == "vdd-lp-simplex"

    def test_solve_unknown_backend_names_the_available_set(self, graph_file,
                                                           capsys):
        code = main(["solve", str(graph_file), "--model", "vdd",
                     "--backend", "cplex"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown backend" in err and "highs" in err


class TestJobsCommand:
    def _record(self, jobs_dir, job_id, **extra):
        record = {"job_id": job_id, "status": "done", "created_at": 1.0,
                  "total": 2, "done": 2, "failed": 0, "cache_hits": 0,
                  "name": job_id, **extra}
        (jobs_dir / f"{job_id}.json").write_text(json.dumps(record))

    def test_listing_survives_truncated_and_corrupt_records(self, tmp_path, capsys):
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        self._record(jobs_dir, "job-good")
        (jobs_dir / "truncated.json").write_text('{"job_id": "job-tr')
        (jobs_dir / "not-a-record.json").write_text("[1, 2, 3]")
        code = main(["jobs", "--jobs-dir", str(jobs_dir)])
        captured = capsys.readouterr()
        assert code == 0
        assert "job-good" in captured.out
        assert captured.err.count("warning: skipping") == 2
        assert "truncated.json" in captured.err
        assert "not-a-record.json" in captured.err

    def test_listing_survives_badly_typed_fields(self, tmp_path, capsys):
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        self._record(jobs_dir, "job-good")
        self._record(jobs_dir, "job-bad", created_at="not-a-number",
                     failed=None, cache_hits=None, name=None)
        code = main(["jobs", "--jobs-dir", str(jobs_dir)])
        captured = capsys.readouterr()
        assert code == 0
        assert "job-good" in captured.out and "job-bad" in captured.out

    def test_empty_dir_reports_no_records(self, tmp_path, capsys):
        code = main(["jobs", "--jobs-dir", str(tmp_path / "missing")])
        assert code == 0
        assert "no job records" in capsys.readouterr().out
