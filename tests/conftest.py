"""Shared pytest fixtures and an import fallback for non-installed checkouts."""

from __future__ import annotations

import pathlib
import sys

# Allow running the test suite from a fresh checkout without installation
# (e.g. in offline environments where `pip install -e .` is unavailable).
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - only hit without installation
        sys.path.insert(0, str(_SRC))

import pytest

from repro.core.models import ContinuousModel, DiscreteModel, IncrementalModel, VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.graphs import generators


@pytest.fixture
def small_fork():
    """A 4-leaf fork graph with fixed weights (Theorem 1 shape)."""
    return generators.fork(4, source_work=2.0, works=[1.0, 2.0, 3.0, 4.0])


@pytest.fixture
def small_chain():
    """A 5-task chain with fixed weights."""
    return generators.chain(5, works=[1.0, 2.0, 3.0, 2.0, 1.0])


@pytest.fixture
def small_sp_graph():
    """A deterministic series-parallel graph with 10 tasks."""
    return generators.random_series_parallel(10, seed=42)


@pytest.fixture
def small_layered_dag():
    """A deterministic layered DAG with 12 tasks (not series-parallel in general)."""
    return generators.layered_dag(12, seed=7)


@pytest.fixture
def four_modes():
    """A small irregular mode set."""
    return (0.4, 0.7, 0.8, 1.0)


@pytest.fixture
def continuous_model():
    return ContinuousModel(s_max=1.0)


@pytest.fixture
def discrete_model(four_modes):
    return DiscreteModel(modes=four_modes)


@pytest.fixture
def vdd_model(four_modes):
    return VddHoppingModel(modes=four_modes)


@pytest.fixture
def incremental_model():
    return IncrementalModel.from_range(0.2, 1.0, 0.2)


@pytest.fixture
def layered_problem(small_layered_dag):
    """A Continuous problem on the layered DAG with 50% deadline slack."""
    from repro.graphs.analysis import longest_path_length

    min_makespan = longest_path_length(small_layered_dag)
    return MinEnergyProblem(graph=small_layered_dag, deadline=1.5 * min_makespan,
                            model=ContinuousModel(s_max=1.0))
