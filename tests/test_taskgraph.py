"""Tests for the TaskGraph container and its analysis routines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Task,
    TaskGraph,
    ancestors,
    critical_path,
    descendants,
    graph_depth,
    graph_width,
    longest_path_length,
    topological_order,
    transitive_closure_pairs,
    transitive_reduction,
)
from repro.graphs.analysis import levels
from repro.graphs import generators
from repro.utils.errors import InvalidGraphError


class TestTask:
    def test_valid_task(self):
        t = Task("T1", 2.5)
        assert t.name == "T1"
        assert t.work == 2.5

    def test_zero_work_rejected(self):
        with pytest.raises(InvalidGraphError):
            Task("T1", 0.0)

    def test_negative_work_rejected(self):
        with pytest.raises(InvalidGraphError):
            Task("T1", -1.0)

    def test_infinite_work_rejected(self):
        with pytest.raises(InvalidGraphError):
            Task("T1", float("inf"))

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidGraphError):
            Task("", 1.0)


class TestTaskGraphConstruction:
    def test_add_task_and_edge(self):
        g = TaskGraph()
        g.add_task(Task("A", 1.0))
        g.add_task("B", 2.0)
        g.add_edge("A", "B")
        assert g.n_tasks == 2
        assert g.n_edges == 1
        assert g.has_edge("A", "B")
        assert not g.has_edge("B", "A")

    def test_constructor_with_tuples(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 2.0)], edges=[("A", "B")])
        assert g.work("B") == 2.0

    def test_duplicate_task_rejected(self):
        g = TaskGraph(tasks=[("A", 1.0)])
        with pytest.raises(InvalidGraphError):
            g.add_task(Task("A", 2.0))

    def test_add_task_by_name_without_work(self):
        g = TaskGraph()
        with pytest.raises(InvalidGraphError):
            g.add_task("A")

    def test_edge_with_unknown_endpoint(self):
        g = TaskGraph(tasks=[("A", 1.0)])
        with pytest.raises(InvalidGraphError):
            g.add_edge("A", "Z")
        with pytest.raises(InvalidGraphError):
            g.add_edge("Z", "A")

    def test_self_loop_rejected(self):
        g = TaskGraph(tasks=[("A", 1.0)])
        with pytest.raises(InvalidGraphError):
            g.add_edge("A", "A")

    def test_remove_edge(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0)], edges=[("A", "B")])
        g.remove_edge("A", "B")
        assert g.n_edges == 0

    def test_remove_missing_edge(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0)])
        with pytest.raises(InvalidGraphError):
            g.remove_edge("A", "B")

    def test_unknown_task_lookup(self):
        g = TaskGraph()
        with pytest.raises(InvalidGraphError):
            g.task("missing")

    def test_contains_and_iteration(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0)])
        assert "A" in g
        assert list(g) == ["A", "B"]
        assert len(g) == 2

    def test_total_work(self):
        g = TaskGraph(tasks=[("A", 1.5), ("B", 2.5)])
        assert g.total_work() == 4.0

    def test_sources_and_sinks(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0), ("C", 1.0)],
                      edges=[("A", "B"), ("B", "C")])
        assert g.sources() == ["A"]
        assert g.sinks() == ["C"]

    def test_degrees(self):
        g = generators.fork(3, source_work=1.0, works=[1.0, 1.0, 1.0])
        assert g.out_degree("T0") == 3
        assert g.in_degree("T1") == 1

    def test_cycle_detection(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0)],
                      edges=[("A", "B"), ("B", "A")])
        assert not g.is_dag()
        with pytest.raises(InvalidGraphError):
            g.validate()

    def test_copy_is_independent(self):
        g = generators.chain(3, works=[1.0, 2.0, 3.0])
        c = g.copy()
        c.add_task(Task("X", 1.0))
        assert "X" not in g

    def test_with_scaled_work(self):
        g = generators.chain(3, works=[1.0, 2.0, 3.0])
        scaled = g.with_scaled_work(2.0)
        assert scaled.work("T2") == 4.0
        assert scaled.edges() == g.edges()

    def test_with_scaled_work_invalid_factor(self):
        g = generators.chain(2, works=[1.0, 1.0])
        with pytest.raises(InvalidGraphError):
            g.with_scaled_work(0.0)

    def test_subgraph(self):
        g = generators.chain(4, works=[1.0, 1.0, 1.0, 1.0])
        sub = g.subgraph(["T1", "T2"])
        assert sub.n_tasks == 2
        assert sub.has_edge("T1", "T2")

    def test_subgraph_unknown_task(self):
        g = generators.chain(2, works=[1.0, 1.0])
        with pytest.raises(InvalidGraphError):
            g.subgraph(["T1", "Z"])

    def test_networkx_roundtrip(self):
        g = generators.layered_dag(10, seed=0)
        nxg = g.to_networkx()
        back = TaskGraph.from_networkx(nxg)
        assert set(back.task_names()) == set(g.task_names())
        assert set(back.edges()) == set(g.edges())
        assert back.work(g.task_names()[0]) == g.work(g.task_names()[0])

    def test_from_works(self):
        g = TaskGraph.from_works({"A": 1.0, "B": 2.0}, edges=[("A", "B")])
        assert g.n_tasks == 2 and g.has_edge("A", "B")


class TestAnalysis:
    def test_topological_order_respects_edges(self):
        g = generators.layered_dag(20, seed=1)
        order = topological_order(g)
        position = {n: i for i, n in enumerate(order)}
        assert all(position[u] < position[v] for u, v in g.edges())

    def test_topological_order_cycle_raises(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0)], edges=[("A", "B"), ("B", "A")])
        with pytest.raises(InvalidGraphError):
            topological_order(g)

    def test_longest_path_chain(self):
        g = generators.chain(4, works=[1.0, 2.0, 3.0, 4.0])
        assert longest_path_length(g) == pytest.approx(10.0)

    def test_longest_path_fork(self):
        g = generators.fork(3, source_work=2.0, works=[1.0, 5.0, 3.0])
        assert longest_path_length(g) == pytest.approx(7.0)

    def test_longest_path_custom_weight(self):
        g = generators.chain(3, works=[1.0, 1.0, 1.0])
        assert longest_path_length(g, weight=lambda _n: 2.0) == pytest.approx(6.0)

    def test_longest_path_weight_mapping_missing(self):
        g = generators.chain(2, works=[1.0, 1.0])
        with pytest.raises(InvalidGraphError):
            longest_path_length(g, weight={"T1": 1.0})

    def test_critical_path_tasks_form_a_path(self):
        g = generators.layered_dag(25, seed=2)
        length, path = critical_path(g)
        assert length == pytest.approx(longest_path_length(g))
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v)
        assert length == pytest.approx(sum(g.work(n) for n in path))

    def test_ancestors_and_descendants(self):
        g = generators.chain(4, works=[1.0] * 4)
        assert ancestors(g, "T3") == {"T1", "T2"}
        assert descendants(g, "T2") == {"T3", "T4"}
        assert ancestors(g, "T1") == set()

    def test_transitive_closure_pairs_chain(self):
        g = generators.chain(3, works=[1.0] * 3)
        assert transitive_closure_pairs(g) == {("T1", "T2"), ("T1", "T3"), ("T2", "T3")}

    def test_transitive_reduction_removes_shortcut(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0), ("C", 1.0)],
                      edges=[("A", "B"), ("B", "C"), ("A", "C")])
        reduced = transitive_reduction(g)
        assert not reduced.has_edge("A", "C")
        assert reduced.has_edge("A", "B") and reduced.has_edge("B", "C")

    def test_transitive_reduction_preserves_reachability(self):
        g = generators.erdos_dag(15, seed=3, edge_probability=0.4)
        reduced = transitive_reduction(g)
        assert transitive_closure_pairs(reduced) == transitive_closure_pairs(g)

    def test_depth_and_width_chain(self):
        g = generators.chain(5, works=[1.0] * 5)
        assert graph_depth(g) == 5
        assert graph_width(g) == 1

    def test_depth_and_width_fork(self):
        g = generators.fork(6, source_work=1.0, works=[1.0] * 6)
        assert graph_depth(g) == 2
        assert graph_width(g) == 6

    def test_levels(self):
        g = generators.fork_join(3, source_work=1.0, sink_work=1.0, works=[1.0] * 3)
        lvl = levels(g)
        assert lvl["src"] == 1
        assert lvl["snk"] == 3

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_critical_path_at_least_max_work(self, n, seed):
        g = generators.layered_dag(n, seed=seed)
        length, _ = critical_path(g)
        assert length >= max(g.work(t) for t in g.task_names()) - 1e-12

    @given(st.integers(min_value=1, max_value=25), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_longest_path_bounded_by_total_work(self, n, seed):
        g = generators.erdos_dag(n, seed=seed)
        assert longest_path_length(g) <= g.total_work() + 1e-9
