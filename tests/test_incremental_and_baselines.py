"""Tests for the Incremental approximation (Theorem 5) and the baselines."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import solve_no_reclaim, solve_proportional_path, solve_uniform_scaling
from repro.continuous.bounds import continuous_lower_bound
from repro.core.models import ContinuousModel, DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.validation import check_solution
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.incremental import (
    ApproximationCertificate,
    build_incremental_model,
    grid_from_discrete,
    incremental_certificate,
    solve_incremental_approx,
    solve_incremental_exact,
)
from repro.incremental.approx import theorem5_ratio
from repro.utils.errors import InvalidModelError


def _problem(graph, slack, model):
    min_makespan = longest_path_length(graph) / model.max_speed
    return MinEnergyProblem(graph=graph, deadline=slack * min_makespan, model=model)


class TestGridConstruction:
    def test_build_from_delta(self):
        m = build_incremental_model(0.5, 1.0, delta=0.25)
        assert m.modes == (0.5, 0.75, 1.0)

    def test_build_from_n_modes(self):
        m = build_incremental_model(0.5, 1.0, n_modes=6)
        assert m.n_modes == 6
        assert m.modes[0] == pytest.approx(0.5)
        assert m.modes[-1] == pytest.approx(1.0)

    def test_build_single_mode(self):
        m = build_incremental_model(0.5, 1.0, n_modes=1)
        assert m.modes == (0.5,)

    def test_build_requires_exactly_one_spec(self):
        with pytest.raises(InvalidModelError):
            build_incremental_model(0.5, 1.0)
        with pytest.raises(InvalidModelError):
            build_incremental_model(0.5, 1.0, delta=0.1, n_modes=3)
        with pytest.raises(InvalidModelError):
            build_incremental_model(0.5, 1.0, n_modes=0)
        with pytest.raises(InvalidModelError):
            build_incremental_model(1.0, 1.0, n_modes=3)

    def test_grid_from_discrete_covers_range(self):
        discrete = DiscreteModel(modes=(0.3, 0.5, 1.0))
        grid = grid_from_discrete(discrete)
        assert grid.s_min == pytest.approx(0.3)
        assert grid.delta == pytest.approx(0.5)  # the largest gap
        assert grid.modes[-1] <= 1.0 + 1e-9

    def test_grid_from_single_mode_discrete(self):
        grid = grid_from_discrete(DiscreteModel(modes=(0.7,)))
        assert grid.modes == (0.7,)


class TestTheorem5:
    def test_ratio_formula(self):
        m = IncrementalModel.from_range(1.0, 2.0, 0.5)
        assert theorem5_ratio(m, 1) == pytest.approx((1.5 ** 2) * 4.0)
        assert theorem5_ratio(m, 1000) == pytest.approx(1.5 ** 2 * (1 + 1e-3) ** 2)

    def test_ratio_rejects_bad_k(self):
        m = IncrementalModel.from_range(1.0, 2.0, 0.5)
        with pytest.raises(InvalidModelError):
            theorem5_ratio(m, 0)

    def test_approx_solution_feasible_and_certified(self, small_layered_dag):
        model = IncrementalModel.from_range(0.25, 1.0, 0.25)
        p = _problem(small_layered_dag, 1.5, model)
        s = solve_incremental_approx(p)
        check_solution(s)
        assert s.metadata["a_posteriori_ratio"] <= s.metadata["a_priori_ratio"] + 1e-9

    def test_approx_with_small_k_still_feasible(self, small_layered_dag):
        model = IncrementalModel.from_range(0.25, 1.0, 0.25)
        p = _problem(small_layered_dag, 1.5, model)
        s = solve_incremental_approx(p, k=2)
        check_solution(s)

    def test_approx_rejects_wrong_model(self, small_layered_dag):
        p = _problem(small_layered_dag, 1.5, ContinuousModel(s_max=1.0))
        with pytest.raises(InvalidModelError):
            solve_incremental_approx(p)

    def test_approx_rejects_bad_k(self, small_layered_dag):
        model = IncrementalModel.from_range(0.25, 1.0, 0.25)
        p = _problem(small_layered_dag, 1.5, model)
        with pytest.raises(InvalidModelError):
            solve_incremental_approx(p, k=0)

    def test_exact_beats_or_equals_approx(self):
        g = generators.layered_dag(7, seed=1)
        model = IncrementalModel.from_range(0.25, 1.0, 0.25)
        p = _problem(g, 1.4, model)
        exact = solve_incremental_exact(p)
        approx = solve_incremental_approx(p)
        check_solution(exact)
        check_solution(approx)
        assert exact.energy <= approx.energy * (1 + 1e-9)
        # Theorem 5: the approximation is within the guaranteed factor of the
        # exact optimum (a fortiori of the continuous bound)
        assert approx.energy <= theorem5_ratio(model, 1000) * exact.energy * (1 + 1e-6)

    def test_exact_rejects_wrong_model(self, small_layered_dag):
        p = _problem(small_layered_dag, 1.5, DiscreteModel(modes=(0.5, 1.0)))
        with pytest.raises(InvalidModelError):
            solve_incremental_exact(p)

    def test_certificate_fields(self, small_layered_dag):
        model = IncrementalModel.from_range(0.25, 1.0, 0.25)
        p = _problem(small_layered_dag, 1.5, model)
        lb = continuous_lower_bound(p)
        cert = incremental_certificate(p, achieved_energy=lb * 1.2,
                                       continuous_lower_bound=lb)
        assert isinstance(cert, ApproximationCertificate)
        assert cert.delta == model.delta
        assert cert.a_posteriori_ratio <= 1.2 + 1e-9
        assert cert.is_within_guarantee()

    def test_certificate_rejects_wrong_model(self, small_layered_dag):
        p = _problem(small_layered_dag, 1.5, ContinuousModel(s_max=1.0))
        with pytest.raises(InvalidModelError):
            incremental_certificate(p, 1.0, 1.0)

    def test_finer_grid_never_hurts(self):
        g = generators.layered_dag(14, seed=2)
        coarse = IncrementalModel.from_range(0.2, 1.0, 0.4)
        fine = IncrementalModel.from_range(0.2, 1.0, 0.1)
        pc = _problem(g, 1.5, coarse)
        pf = _problem(g, 1.5, fine)
        assert (solve_incremental_approx(pf).energy
                <= solve_incremental_approx(pc).energy * (1 + 1e-9))

    @given(st.integers(min_value=2, max_value=15),
           st.floats(min_value=1.1, max_value=3.0),
           st.sampled_from([0.4, 0.2, 0.1]),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_theorem5_guarantee_holds(self, n, slack, delta, seed):
        """Property: the measured ratio never exceeds the proven bound."""
        g = generators.layered_dag(n, seed=seed)
        model = IncrementalModel.from_range(0.2, 1.0, delta)
        p = _problem(g, slack, model)
        s = solve_incremental_approx(p)
        check_solution(s)
        assert s.metadata["a_posteriori_ratio"] <= s.metadata["a_priori_ratio"] * (1 + 1e-9)


class TestBaselines:
    def test_no_reclaim_runs_everything_at_s_max(self, layered_problem):
        p = layered_problem
        s = solve_no_reclaim(p)
        check_solution(s)
        assert all(v == pytest.approx(1.0) for v in s.speeds().values())

    def test_no_reclaim_requires_finite_s_max(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=100.0, model=ContinuousModel())
        with pytest.raises(InvalidModelError):
            solve_no_reclaim(p)

    def test_uniform_scaling_continuous(self, layered_problem):
        s = solve_uniform_scaling(layered_problem)
        check_solution(s)
        speeds = set(round(v, 12) for v in s.speeds().values())
        assert len(speeds) == 1
        # the common speed stretches the critical path to the deadline
        assert s.makespan == pytest.approx(layered_problem.deadline)

    def test_uniform_scaling_discrete_rounds_up(self, small_layered_dag):
        model = DiscreteModel(modes=(0.25, 0.5, 0.75, 1.0))
        p = _problem(small_layered_dag, 1.7, model)
        s = solve_uniform_scaling(p)
        check_solution(s)
        assert set(s.speeds().values()) <= set(model.modes)

    def test_uniform_never_better_than_optimal(self, layered_problem):
        from repro.continuous.solve import solve_continuous

        uniform = solve_uniform_scaling(layered_problem)
        optimal = solve_continuous(layered_problem)
        assert optimal.energy <= uniform.energy * (1 + 1e-9)

    def test_no_reclaim_worst_of_all(self, small_layered_dag):
        model = DiscreteModel(modes=(0.4, 0.7, 1.0))
        p = _problem(small_layered_dag, 1.8, model)
        from repro.discrete.heuristics import solve_discrete_best_heuristic

        baseline = solve_no_reclaim(p)
        reclaimed = solve_discrete_best_heuristic(p)
        assert reclaimed.energy <= baseline.energy * (1 + 1e-9)

    def test_proportional_path_alias(self, layered_problem):
        s = solve_proportional_path(layered_problem)
        assert s.solver == "baseline-proportional-path"

    @given(st.integers(min_value=2, max_value=20),
           st.floats(min_value=1.05, max_value=4.0),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_energy_savings_grow_with_slack(self, n, slack, seed):
        """Reclaiming with uniform scaling saves a factor slack**2 exactly
        (cubic law): E_uniform = E_no_reclaim / slack**2 on the same graph."""
        g = generators.layered_dag(n, seed=seed)
        model = ContinuousModel(s_max=1.0)
        min_makespan = longest_path_length(g)
        p = MinEnergyProblem(graph=g, deadline=slack * min_makespan, model=model)
        no_reclaim = solve_no_reclaim(p)
        uniform = solve_uniform_scaling(p)
        assert uniform.energy == pytest.approx(no_reclaim.energy / slack ** 2, rel=1e-6)
