"""Tests for MinEnergyProblem, assignments, schedules and the validator."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.models import ContinuousModel, DiscreteModel, VddHoppingModel
from repro.core.power import CUBIC, PowerLaw
from repro.core.problem import MinEnergyProblem
from repro.core.solution import (
    HoppingAssignment,
    SpeedAssignment,
    assignments_close,
    compute_schedule,
    make_solution,
)
from repro.core.validation import check_assignment, check_solution, is_feasible_assignment
from repro.graphs import generators
from repro.graphs.taskgraph import TaskGraph
from repro.mapping.execution_graph import ExecutionGraph
from repro.utils.errors import (
    InfeasibleProblemError,
    InvalidGraphError,
    InvalidModelError,
    InvalidSolutionError,
)


class TestMinEnergyProblem:
    def test_basic_construction(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0)
        assert p.n_tasks == 5
        assert "MinEnergy" in p.name

    def test_accepts_execution_graph(self, small_chain):
        eg = ExecutionGraph.trivial(small_chain)
        p = MinEnergyProblem(graph=eg, deadline=20.0)
        assert isinstance(p.graph, TaskGraph)
        assert p.n_tasks == 5

    def test_rejects_non_graph(self):
        with pytest.raises(InvalidGraphError):
            MinEnergyProblem(graph="not a graph", deadline=1.0)

    def test_rejects_invalid_deadline(self, small_chain):
        with pytest.raises(InvalidModelError):
            MinEnergyProblem(graph=small_chain, deadline=0.0)
        with pytest.raises(InvalidModelError):
            MinEnergyProblem(graph=small_chain, deadline=math.inf)

    def test_rejects_non_model(self, small_chain):
        with pytest.raises(InvalidModelError):
            MinEnergyProblem(graph=small_chain, deadline=1.0, model="continuous")

    def test_rejects_cyclic_graph(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 1.0)], edges=[("A", "B"), ("B", "A")])
        with pytest.raises(InvalidGraphError):
            MinEnergyProblem(graph=g, deadline=1.0)

    def test_min_makespan_chain(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0,
                             model=ContinuousModel(s_max=2.0))
        assert p.min_makespan() == pytest.approx(small_chain.total_work() / 2.0)

    def test_min_makespan_uncapped_model(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0, model=ContinuousModel())
        assert p.min_makespan() == 0.0
        assert p.slack_factor() == math.inf

    def test_feasibility(self, small_chain):
        feasible = MinEnergyProblem(graph=small_chain, deadline=10.0,
                                    model=ContinuousModel(s_max=1.0))
        assert feasible.is_feasible()
        infeasible = MinEnergyProblem(graph=small_chain, deadline=5.0,
                                      model=ContinuousModel(s_max=1.0))
        assert not infeasible.is_feasible()
        with pytest.raises(InfeasibleProblemError):
            infeasible.ensure_feasible()

    def test_slack_factor(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=18.0,
                             model=ContinuousModel(s_max=1.0))
        assert p.slack_factor() == pytest.approx(2.0)

    def test_earliest_completion_times_default_speed(self, small_fork):
        p = MinEnergyProblem(graph=small_fork, deadline=20.0,
                             model=ContinuousModel(s_max=1.0))
        ect = p.earliest_completion_times()
        assert ect["T0"] == pytest.approx(2.0)
        assert ect["T4"] == pytest.approx(6.0)

    def test_earliest_completion_times_custom_speeds(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0,
                             model=ContinuousModel(s_max=1.0))
        ect = p.earliest_completion_times({n: 2.0 for n in small_chain.task_names()})
        assert ect["T5"] == pytest.approx(small_chain.total_work() / 2.0)

    def test_earliest_completion_missing_speed(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0,
                             model=ContinuousModel(s_max=1.0))
        with pytest.raises(InvalidModelError):
            p.earliest_completion_times({"T1": 1.0})

    def test_latest_completion_times(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0,
                             model=ContinuousModel(s_max=1.0))
        lct = p.latest_completion_times()
        assert lct["T5"] == pytest.approx(20.0)
        # earlier tasks must leave room for the downstream work at s_max
        assert lct["T1"] == pytest.approx(20.0 - (2.0 + 3.0 + 2.0 + 1.0))

    def test_uncapped_model_requires_speeds_for_timing(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0, model=ContinuousModel())
        with pytest.raises(InvalidModelError):
            p.earliest_completion_times()

    def test_with_model_and_deadline(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0,
                             model=ContinuousModel(s_max=1.0))
        q = p.with_model(DiscreteModel(modes=(1.0,)))
        assert q.model.name == "discrete"
        assert q.deadline == p.deadline
        r = p.with_deadline(30.0)
        assert r.deadline == 30.0
        assert r.model is p.model


class TestSpeedAssignment:
    def test_durations_and_energy(self, small_chain):
        a = SpeedAssignment({n: 2.0 for n in small_chain.task_names()})
        durations = a.durations(small_chain)
        assert durations["T2"] == pytest.approx(1.0)
        # cubic: E = sum w * s^2 = 9 * 4
        assert a.energy(small_chain) == pytest.approx(small_chain.total_work() * 4.0)

    def test_task_energy(self):
        a = SpeedAssignment({"A": 3.0})
        assert a.task_energy("A", 2.0) == pytest.approx(18.0)

    def test_non_positive_speed_rejected(self):
        with pytest.raises(InvalidSolutionError):
            SpeedAssignment({"A": 0.0})

    def test_scaled(self):
        a = SpeedAssignment({"A": 1.0, "B": 2.0})
        b = a.scaled(2.0)
        assert b.speeds["B"] == 4.0
        with pytest.raises(InvalidSolutionError):
            a.scaled(0.0)

    def test_assignments_close(self):
        a = SpeedAssignment({"A": 1.0, "B": 2.0})
        b = SpeedAssignment({"A": 1.0 + 1e-9, "B": 2.0})
        c = SpeedAssignment({"A": 1.5, "B": 2.0})
        assert assignments_close(a, b)
        assert not assignments_close(a, c)
        assert not assignments_close(a, SpeedAssignment({"A": 1.0}))


class TestHoppingAssignment:
    def test_energy_and_work(self):
        segs = {"A": [(1.0, 2.0), (2.0, 1.0)]}  # 2 + 2 = 4 work units
        h = HoppingAssignment(segments=segs)
        assert h.executed_work("A") == pytest.approx(4.0)
        assert h.duration("A") == pytest.approx(3.0)
        assert h.task_energy("A") == pytest.approx(1.0 * 2.0 + 8.0 * 1.0)
        assert h.average_speeds()["A"] == pytest.approx(4.0 / 3.0)

    def test_empty_segments_rejected(self):
        with pytest.raises(InvalidSolutionError):
            HoppingAssignment(segments={"A": []})

    def test_invalid_segment_values(self):
        with pytest.raises(InvalidSolutionError):
            HoppingAssignment(segments={"A": [(0.0, 1.0)]})
        with pytest.raises(InvalidSolutionError):
            HoppingAssignment(segments={"A": [(1.0, -1.0)]})

    def test_from_constant_speeds(self, small_chain):
        a = SpeedAssignment({n: 2.0 for n in small_chain.task_names()})
        h = HoppingAssignment.from_constant_speeds(a, small_chain)
        assert h.energy(small_chain) == pytest.approx(a.energy(small_chain))
        assert h.durations(small_chain) == pytest.approx(a.durations(small_chain))


class TestScheduleAndSolution:
    def test_compute_schedule_chain(self, small_chain):
        durations = {n: small_chain.work(n) for n in small_chain.task_names()}
        sched = compute_schedule(small_chain, durations)
        assert sched.makespan == pytest.approx(small_chain.total_work())
        assert sched.start["T1"] == 0.0
        assert sched.task_interval("T2") == (pytest.approx(1.0), pytest.approx(3.0))

    def test_compute_schedule_fork(self, small_fork):
        durations = {n: small_fork.work(n) for n in small_fork.task_names()}
        sched = compute_schedule(small_fork, durations)
        # all leaves start when the source finishes
        assert sched.start["T3"] == pytest.approx(2.0)
        assert sched.makespan == pytest.approx(6.0)

    def test_make_solution_recomputes_energy(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0,
                             model=ContinuousModel(s_max=2.0))
        a = SpeedAssignment({n: 1.0 for n in small_chain.task_names()})
        s = make_solution(p, a, solver="test")
        assert s.energy == pytest.approx(a.energy(small_chain))
        assert s.makespan == pytest.approx(small_chain.total_work())
        assert "test" in s.summary()

    def test_solution_gap_and_ratio(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=20.0,
                             model=ContinuousModel(s_max=2.0))
        a = SpeedAssignment({n: 1.0 for n in small_chain.task_names()})
        s = make_solution(p, a, solver="test", lower_bound=a.energy(small_chain) / 2)
        assert s.gap_to_lower_bound() == pytest.approx(1.0)
        assert s.energy_ratio(s.energy) == pytest.approx(1.0)
        with pytest.raises(InvalidSolutionError):
            s.energy_ratio(0.0)

    def test_solution_speeds_for_hopping(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=40.0,
                             model=VddHoppingModel(modes=(0.5, 1.0)))
        segs = {n: [(1.0, small_chain.work(n))] for n in small_chain.task_names()}
        s = make_solution(p, HoppingAssignment(segments=segs), solver="test")
        assert s.speeds()["T1"] == pytest.approx(1.0)


class TestValidation:
    def _problem(self, graph, deadline, model=None):
        return MinEnergyProblem(graph=graph, deadline=deadline,
                                model=model or ContinuousModel(s_max=2.0))

    def test_valid_assignment_passes(self, small_chain):
        p = self._problem(small_chain, 20.0)
        a = SpeedAssignment({n: 1.0 for n in small_chain.task_names()})
        check_assignment(p, a)
        assert is_feasible_assignment(p, a)

    def test_missing_task_detected(self, small_chain):
        p = self._problem(small_chain, 20.0)
        a = SpeedAssignment({"T1": 1.0})
        with pytest.raises(InvalidSolutionError):
            check_assignment(p, a)

    def test_extra_task_detected(self, small_chain):
        p = self._problem(small_chain, 20.0)
        speeds = {n: 1.0 for n in small_chain.task_names()}
        speeds["ghost"] = 1.0
        with pytest.raises(InvalidSolutionError):
            check_assignment(p, SpeedAssignment(speeds))

    def test_deadline_violation_detected(self, small_chain):
        p = self._problem(small_chain, 5.0)
        a = SpeedAssignment({n: 1.0 for n in small_chain.task_names()})  # needs 9 time units
        with pytest.raises(InvalidSolutionError):
            check_assignment(p, a)
        assert not is_feasible_assignment(p, a)

    def test_inadmissible_speed_detected(self, small_chain):
        p = self._problem(small_chain, 20.0, model=DiscreteModel(modes=(1.0, 2.0)))
        a = SpeedAssignment({n: 1.5 for n in small_chain.task_names()})
        with pytest.raises(InvalidSolutionError):
            check_assignment(p, a)
        # but passes when admissibility checking is off
        check_assignment(p, a, check_admissibility=False)

    def test_speed_above_continuous_cap_detected(self, small_chain):
        p = self._problem(small_chain, 20.0, model=ContinuousModel(s_max=1.0))
        a = SpeedAssignment({n: 1.5 for n in small_chain.task_names()})
        with pytest.raises(InvalidSolutionError):
            check_assignment(p, a)

    def test_hopping_work_mismatch_detected(self, small_chain):
        p = self._problem(small_chain, 40.0, model=VddHoppingModel(modes=(1.0, 2.0)))
        segs = {n: [(1.0, small_chain.work(n) * 0.5)] for n in small_chain.task_names()}
        with pytest.raises(InvalidSolutionError):
            check_assignment(p, HoppingAssignment(segments=segs))

    def test_hopping_inadmissible_mode_detected(self, small_chain):
        p = self._problem(small_chain, 40.0, model=VddHoppingModel(modes=(1.0, 2.0)))
        segs = {n: [(1.5, small_chain.work(n) / 1.5)] for n in small_chain.task_names()}
        with pytest.raises(InvalidSolutionError):
            check_assignment(p, HoppingAssignment(segments=segs))

    def test_hopping_under_constant_speed_model_rejected(self, small_chain):
        p = self._problem(small_chain, 40.0, model=DiscreteModel(modes=(1.0, 2.0)))
        segs = {n: [(1.0, small_chain.work(n) / 2), (2.0, small_chain.work(n) / 4)]
                for n in small_chain.task_names()}
        with pytest.raises(InvalidSolutionError):
            check_assignment(p, HoppingAssignment(segments=segs))

    def test_check_solution_detects_energy_mismatch(self, small_chain):
        p = self._problem(small_chain, 20.0)
        a = SpeedAssignment({n: 1.0 for n in small_chain.task_names()})
        s = make_solution(p, a, solver="test")
        s.energy *= 2.0
        with pytest.raises(InvalidSolutionError):
            check_solution(s)

    @given(st.floats(min_value=0.3, max_value=2.0), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_uniform_speed_feasibility_matches_makespan(self, speed, seed):
        graph = generators.layered_dag(10, seed=seed)
        p = MinEnergyProblem(graph=graph, deadline=25.0, model=ContinuousModel(s_max=2.0))
        a = SpeedAssignment({n: speed for n in graph.task_names()})
        sched = compute_schedule(graph, a.durations(graph))
        assert is_feasible_assignment(p, a) == (sched.makespan <= 25.0 * (1 + 1e-6))
