"""Tests for the content-addressed result cache.

Covers the cache-key contract (graph mutation invalidates, solver options
discriminate, names do not), the two stores (in-memory LRU vs on-disk JSON)
agreeing on content, the solve/batch wiring (hit flags, counters), and the
acceptance criterion: a second identical ``sweep()`` is served from the
cache and is at least an order of magnitude faster than the cold run.
"""

from __future__ import annotations

import time

import pytest

from repro.batch import solve_many, summarize, sweep, sweep_cache_stats
from repro.cache import (
    DiskJSONStore,
    MemoryLRUStore,
    ResultCache,
    disk_cache,
    memory_cache,
    solution_envelope,
    solution_from_envelope,
)
from repro.core.models import ContinuousModel, DiscreteModel, VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.validation import check_solution
from repro.graphs import generators
from repro.graphs.taskgraph import Task, TaskGraph
from repro.solve import solve

MODES = (0.4, 0.6, 0.8, 1.0)


def _problem(n: int = 12, *, slack: float = 1.5, seed: int = 1,
             model=None) -> MinEnergyProblem:
    graph = generators.layered_dag(n, seed=seed)
    return MinEnergyProblem(graph=graph, deadline=slack * graph.total_work(),
                            model=model or ContinuousModel(s_max=1.0))


class TestCacheKey:
    def test_identical_problems_share_a_key(self):
        a, b = _problem(seed=7), _problem(seed=7)
        assert a.graph is not b.graph
        assert a.cache_key() == b.cache_key()

    def test_display_names_are_excluded(self):
        a, b = _problem(seed=7), _problem(seed=7)
        b.name = "something else"
        b.graph.name = "renamed"
        assert a.cache_key() == b.cache_key()

    def test_graph_mutation_invalidates_key(self):
        problem = _problem(seed=3)
        before = problem.cache_key()
        problem.graph.add_task(Task("extra", 2.0))
        after_task = problem.cache_key()
        assert after_task != before
        first = problem.graph.task_names()[0]
        problem.graph.add_edge(first, "extra")
        assert problem.cache_key() != after_task
        problem.graph.remove_edge(first, "extra")
        assert problem.cache_key() == after_task

    def test_weights_discriminate(self):
        g1 = TaskGraph(tasks=[("a", 1.0), ("b", 2.0)], edges=[("a", "b")])
        g2 = TaskGraph(tasks=[("a", 1.0), ("b", 2.5)], edges=[("a", "b")])
        p1 = MinEnergyProblem(graph=g1, deadline=10.0, model=ContinuousModel())
        p2 = MinEnergyProblem(graph=g2, deadline=10.0, model=ContinuousModel())
        assert p1.cache_key() != p2.cache_key()

    def test_deadline_model_alpha_and_options_discriminate(self):
        base = _problem(seed=5)
        keys = {
            base.cache_key(),
            base.with_deadline(base.deadline * 1.01).cache_key(),
            base.with_model(ContinuousModel(s_max=2.0)).cache_key(),
            base.with_model(DiscreteModel(modes=MODES)).cache_key(),
            base.with_model(VddHoppingModel(modes=MODES)).cache_key(),
            base.cache_key(method="gp-slsqp"),
            base.cache_key(method="gp-slsqp", options={"tolerance": 1e-6}),
            base.cache_key(method="gp-slsqp", options={"tolerance": 1e-9}),
        }
        assert len(keys) == 8

    def test_same_modes_different_model_classes_differ(self):
        disc = _problem(model=DiscreteModel(modes=MODES))
        vdd = _problem(model=VddHoppingModel(modes=MODES))
        assert disc.cache_key() != vdd.cache_key()


class TestStores:
    def test_memory_lru_eviction(self):
        store = MemoryLRUStore(maxsize=2)
        k1, k2, k3 = "a" * 16, "b" * 16, "c" * 16
        store.put(k1, {"v": 1})
        store.put(k2, {"v": 2})
        assert store.get(k1) == {"v": 1}  # refreshes recency
        store.put(k3, {"v": 3})
        assert store.get(k2) is None  # least recently used went first
        assert store.get(k1) == {"v": 1}
        assert len(store) == 2

    def test_bad_keys_rejected(self):
        store = MemoryLRUStore()
        with pytest.raises(ValueError):
            store.put("../evil", {})
        with pytest.raises(ValueError):
            store.get("short")

    def test_disk_store_roundtrip_and_corruption(self, tmp_path):
        store = DiskJSONStore(tmp_path)
        key = "d" * 64
        store.put(key, {"v": [1, 2.5, "x"]})
        assert store.get(key) == {"v": [1, 2.5, "x"]}
        assert key in store and len(store) == 1
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        assert store.get(key) is None  # corrupt file reads as a miss
        store.clear()
        assert len(store) == 0

    def test_memory_and_disk_stores_agree(self, tmp_path):
        """The same solve produces byte-identical envelopes in both stores."""
        problem = _problem(seed=11)
        mem, disk = memory_cache(), disk_cache(tmp_path)
        solved_mem = solve(problem, cache=mem)
        solved_disk = solve(problem, cache=disk)
        key = problem.cache_key(method="auto", options={})
        assert mem.peek(key) == disk.peek(key)
        hit_mem = solve(_problem(seed=11), cache=mem)
        hit_disk = solve(_problem(seed=11), cache=disk)
        assert hit_mem.metadata["cache_hit"] and hit_disk.metadata["cache_hit"]
        assert hit_mem.energy == pytest.approx(hit_disk.energy, rel=1e-15)
        assert hit_mem.energy == pytest.approx(solved_mem.energy, rel=1e-12)
        assert solved_disk.solver == hit_disk.solver


class TestSolveWiring:
    def test_hit_returns_equivalent_validated_solution(self):
        cache = memory_cache()
        problem = _problem(seed=2)
        cold = solve(problem, cache=cache)
        warm = solve(_problem(seed=2), cache=cache)
        check_solution(warm)
        assert warm.metadata["cache_hit"] is True
        assert cold.metadata["cache_hit"] is False
        assert warm.energy == pytest.approx(cold.energy, rel=1e-12)
        assert warm.solver == cold.solver
        assert warm.speeds() == pytest.approx(cold.speeds())
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_different_options_miss(self):
        cache = memory_cache()
        solve(_problem(seed=4), method="gp-slsqp", cache=cache)
        second = solve(_problem(seed=4), method="gp-slsqp",
                       options={"tolerance": 1e-6}, cache=cache)
        assert second.metadata["cache_hit"] is False
        assert cache.stats.hits == 0 and cache.stats.misses == 2

    def test_hopping_assignment_roundtrips(self):
        cache = memory_cache()
        problem = _problem(seed=6, model=VddHoppingModel(modes=MODES))
        cold = solve(problem, cache=cache)
        warm = solve(_problem(seed=6, model=VddHoppingModel(modes=MODES)),
                     cache=cache)
        assert warm.metadata["cache_hit"] is True
        check_solution(warm)
        assert warm.energy == pytest.approx(cold.energy, rel=1e-12)

    def test_envelope_roundtrip_is_revalidated(self):
        problem = _problem(seed=9)
        solution = solve(problem)
        envelope = solution_envelope(solution)
        rebuilt = solution_from_envelope(problem, envelope)
        assert rebuilt.metadata["cache_hit"] is True
        assert rebuilt.energy == pytest.approx(solution.energy, rel=1e-12)
        # energy is recomputed from the assignment, not read from the blob
        envelope["energy"] = 0.0
        assert solution_from_envelope(problem, envelope).energy > 0


class TestBatchWiring:
    def test_solve_many_second_run_is_all_hits(self):
        cache = memory_cache()
        problems = [_problem(seed=s) for s in range(4)]
        cold = solve_many(problems, cache=cache)
        warm = solve_many([_problem(seed=s) for s in range(4)], cache=cache)
        assert [r.cache_hit for r in cold] == [False] * 4
        assert [r.cache_hit for r in warm] == [True] * 4
        assert summarize(warm)["cache_hits"] == 4
        for a, b in zip(cold, warm):
            assert b.energy == pytest.approx(a.energy, rel=1e-12)
            assert b.solver == a.solver

    def test_pooled_misses_populate_the_parent_cache(self):
        cache = memory_cache()
        problems = [_problem(seed=s) for s in range(3)]
        solve_many(problems, workers=2, cache=cache)
        assert len(cache) == 3
        warm = solve_many([_problem(seed=s) for s in range(3)],
                          workers=2, cache=cache)
        assert all(r.cache_hit for r in warm)

    def test_warm_hits_keep_speeds_for_both_assignment_kinds(self):
        cache = memory_cache()
        problems = [_problem(seed=1),
                    _problem(seed=2, model=VddHoppingModel(modes=MODES))]
        cold = solve_many(problems, cache=cache, keep_speeds=True)
        warm = solve_many(
            [_problem(seed=1),
             _problem(seed=2, model=VddHoppingModel(modes=MODES))],
            cache=cache, keep_speeds=True)
        assert all(r.cache_hit for r in warm)
        for a, b in zip(cold, warm):
            assert b.speeds is not None
            assert b.speeds == pytest.approx(a.speeds, rel=1e-12)

    def test_failures_are_not_cached(self):
        cache = memory_cache()
        graph = generators.chain(6, seed=1)
        infeasible = MinEnergyProblem(graph=graph,
                                      deadline=0.5 * graph.total_work(),
                                      model=ContinuousModel(s_max=1.0))
        first = solve_many([infeasible], cache=cache)
        again = solve_many([infeasible], cache=cache)
        assert not first[0].ok and not again[0].ok
        assert len(cache) == 0
        assert not again[0].cache_hit


class TestSweepAcceptance:
    def test_second_identical_sweep_served_from_cache_10x_faster(self):
        """ISSUE acceptance: warm sweep >= 10x faster, hit rate reported."""
        cache = memory_cache()
        kwargs = dict(graph_classes=("layered",), sizes=(32,),
                      slacks=(1.2, 1.8), repetitions=2, seed=13,
                      model="continuous", cache=cache)
        start = time.perf_counter()
        cold = sweep(**kwargs)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = sweep(**kwargs)
        warm_seconds = time.perf_counter() - start

        assert all(cold.column("ok")) and all(warm.column("ok"))
        assert sweep_cache_stats(cold) == {"hits": 0, "misses": 4,
                                           "hit_rate": 0.0}
        assert sweep_cache_stats(warm) == {"hits": 4, "misses": 0,
                                           "hit_rate": 1.0}
        for a, b in zip(cold.column("energy"), warm.column("energy")):
            assert b == pytest.approx(a, rel=1e-12)
        assert warm_seconds * 10 <= cold_seconds, (
            f"warm sweep took {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s")

    def test_sweep_rows_record_seed_and_cache_hit(self):
        cache = memory_cache()
        table = sweep(graph_classes=("chain",), sizes=(8,), slacks=(1.5,),
                      repetitions=2, seed=21, cache=cache)
        assert all(isinstance(s, int) for s in table.column("seed"))
        assert table.column("cache_hit") == [False, False]
        again = sweep(graph_classes=("chain",), sizes=(8,), slacks=(1.5,),
                      repetitions=2, seed=21, cache=cache)
        assert again.column("cache_hit") == [True, True]
        assert again.column("seed") == table.column("seed")
