"""Tests for the discrete-event simulator and its metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.models import ContinuousModel, VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import HoppingAssignment, SpeedAssignment
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.mapping.list_scheduling import list_schedule
from repro.simulation import (
    ExecutionTrace,
    SegmentRecord,
    TaskRecord,
    energy_from_profile,
    power_profile,
    processor_utilisation,
    simulate,
    simulate_solution,
    trace_summary,
)
from repro.solve import solve
from repro.utils.errors import InvalidSolutionError
from repro.vdd.lp import solve_vdd_lp


class TestTraceStructures:
    def test_segment_record(self):
        seg = SegmentRecord(task="A", processor=0, speed=2.0, start=1.0, end=3.0)
        assert seg.duration == 2.0
        assert seg.energy() == pytest.approx(16.0)

    def test_task_record(self):
        segs = (SegmentRecord("A", 0, 1.0, 0.0, 2.0), SegmentRecord("A", 0, 2.0, 2.0, 3.0))
        rec = TaskRecord(task="A", processor=0, work=4.0, start=0.0, finish=3.0,
                         segments=segs)
        assert rec.duration == 3.0
        assert rec.executed_work() == pytest.approx(4.0)
        assert rec.energy() == pytest.approx(2.0 + 8.0)

    def test_trace_rejects_duplicates(self):
        trace = ExecutionTrace()
        rec = TaskRecord("A", 0, 1.0, 0.0, 1.0,
                         (SegmentRecord("A", 0, 1.0, 0.0, 1.0),))
        trace.add(rec)
        with pytest.raises(InvalidSolutionError):
            trace.add(rec)

    def test_empty_trace_metrics(self):
        trace = ExecutionTrace()
        assert trace.makespan == 0.0
        assert trace.total_energy == 0.0
        with pytest.raises(InvalidSolutionError):
            trace_summary(trace)


class TestSimulate:
    def test_chain_simulation_times(self, small_chain):
        assignment = SpeedAssignment({n: 1.0 for n in small_chain.task_names()})
        trace = simulate(small_chain, assignment)
        assert trace.makespan == pytest.approx(small_chain.total_work())
        assert trace.records["T3"].start == pytest.approx(3.0)
        assert trace.total_energy == pytest.approx(assignment.energy(small_chain))

    def test_fork_parallel_execution(self, small_fork):
        assignment = SpeedAssignment({n: 1.0 for n in small_fork.task_names()})
        trace = simulate(small_fork, assignment)
        # all leaves start when the source finishes
        for leaf in ("T1", "T2", "T3", "T4"):
            assert trace.records[leaf].start == pytest.approx(2.0)
        assert trace.makespan == pytest.approx(6.0)

    def test_simulation_matches_analytical_schedule(self, small_layered_dag):
        from repro.core.solution import compute_schedule

        assignment = SpeedAssignment({n: 0.8 for n in small_layered_dag.task_names()})
        trace = simulate(small_layered_dag, assignment)
        sched = compute_schedule(small_layered_dag, assignment.durations(small_layered_dag))
        for n in small_layered_dag.task_names():
            assert trace.records[n].finish == pytest.approx(sched.finish[n])

    def test_hopping_segments_simulated(self):
        g = generators.chain(2, works=[2.0, 2.0])
        segments = {"T1": [(1.0, 1.0), (2.0, 0.5)], "T2": [(2.0, 1.0)]}
        trace = simulate(g, HoppingAssignment(segments=segments))
        assert trace.records["T1"].finish == pytest.approx(1.5)
        assert trace.records["T2"].start == pytest.approx(1.5)
        assert len(trace.records["T1"].segments) == 2

    def test_work_mismatch_detected(self):
        g = generators.chain(1, works=[2.0])
        bad = HoppingAssignment(segments={"T1": [(1.0, 1.0)]})  # only 1 of 2 work units
        with pytest.raises(InvalidSolutionError):
            simulate(g, bad)

    def test_processor_labelling(self):
        g = generators.layered_dag(12, seed=0)
        eg = list_schedule(g, 3)
        combined = eg.combined_graph()
        assignment = SpeedAssignment({n: 1.0 for n in combined.task_names()})
        processor_of = {t: eg.processor_of(t) for t in g.task_names()}
        trace = simulate(combined, assignment, processor_of=processor_of)
        assert set(trace.processors()) <= {0, 1, 2}
        # tasks sharing a processor never overlap in time
        for proc in trace.processors():
            records = trace.records_on(proc)
            for a, b in zip(records, records[1:]):
                assert b.start >= a.finish - 1e-9

    def test_simulate_solution_energy_matches_solver(self, layered_problem):
        solution = solve(layered_problem)
        trace = simulate_solution(solution)
        assert trace.total_energy == pytest.approx(solution.energy, rel=1e-9)
        assert trace.makespan == pytest.approx(solution.makespan, rel=1e-9)

    def test_simulate_vdd_solution(self, small_layered_dag):
        model = VddHoppingModel(modes=(0.4, 0.7, 1.0))
        deadline = 1.4 * longest_path_length(small_layered_dag)
        p = MinEnergyProblem(graph=small_layered_dag, deadline=deadline, model=model)
        solution = solve_vdd_lp(p)
        trace = simulate_solution(solution)
        assert trace.total_energy == pytest.approx(solution.energy, rel=1e-6)

    def test_simulate_with_execution_graph_labels(self):
        g = generators.layered_dag(15, seed=1)
        eg = list_schedule(g, 4)
        p = MinEnergyProblem(graph=eg, deadline=2.0 * longest_path_length(g),
                             model=ContinuousModel(s_max=1.0))
        solution = solve(p)
        trace = simulate_solution(solution, execution=eg)
        assert len(trace.processors()) <= 4


class TestMetrics:
    def _trace(self, graph, speed=1.0):
        assignment = SpeedAssignment({n: speed for n in graph.task_names()})
        return simulate(graph, assignment)

    def test_utilisation_single_processor_chain(self, small_chain):
        trace = self._trace(small_chain)
        util = processor_utilisation(trace)
        assert util[0] == pytest.approx(1.0)

    def test_utilisation_with_horizon(self, small_chain):
        trace = self._trace(small_chain)
        util = processor_utilisation(trace, horizon=2 * trace.makespan)
        assert util[0] == pytest.approx(0.5)

    def test_power_profile_covers_makespan(self, small_fork):
        trace = self._trace(small_fork)
        profile = power_profile(trace)
        assert profile[0][0] == pytest.approx(0.0)
        assert profile[-1][1] == pytest.approx(trace.makespan)
        # during the parallel phase the power is the sum over the 4 running leaves
        parallel_powers = [p for a, b, p in profile if a >= 2.0]
        assert max(parallel_powers) == pytest.approx(4.0)  # 4 leaves at speed 1

    def test_energy_from_profile_matches_total(self, small_layered_dag):
        trace = self._trace(small_layered_dag, speed=0.7)
        assert energy_from_profile(trace) == pytest.approx(trace.total_energy, rel=1e-9)

    def test_trace_summary_keys(self, small_chain):
        summary = trace_summary(self._trace(small_chain))
        assert summary["n_tasks"] == 5
        assert summary["makespan"] == pytest.approx(small_chain.total_work())

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_profile_energy_equals_segment_energy(self, n, p, seed):
        g = generators.layered_dag(n, seed=seed)
        eg = list_schedule(g, p)
        combined = eg.combined_graph()
        assignment = SpeedAssignment({t: 0.9 for t in combined.task_names()})
        trace = simulate(combined, assignment,
                         processor_of={t: eg.processor_of(t) for t in g.task_names()})
        assert energy_from_profile(trace) == pytest.approx(trace.total_energy, rel=1e-9)
