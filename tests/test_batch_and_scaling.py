"""Tests for the array-based solver core and the batch subsystem.

Covers the deep-graph regressions this layer fixes (10k-task chains/trees
through every model's dispatch path, with no recursion at any depth), the
vectorized schedule/energy fast paths against a dict-based reference, the
cached :class:`~repro.graphs.taskgraph.GraphIndex` (including invalidation
on mutation), and the ``repro.batch`` fan-out/sweep engine including
per-instance failure capture.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.batch import (
    BatchResult,
    failed,
    solve_many,
    summarize,
    sweep,
    sweep_failures,
)
from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.power import CUBIC
from repro.core.problem import MinEnergyProblem
from repro.core.solution import SpeedAssignment, compute_makespan, compute_schedule
from repro.core.validation import check_solution
from repro.continuous.series_parallel import solve_series_parallel
from repro.continuous.tree import solve_tree, tree_equivalent_load
from repro.graphs import generators
from repro.graphs.analysis import levels, longest_path_length, topological_order
from repro.graphs.taskgraph import Task, TaskGraph
from repro.solve import solve
from repro.utils.errors import InvalidGraphError


DEEP = 10_000


def _chain_problem(n: int, model, *, slack: float = 1.5, seed: int = 1) -> MinEnergyProblem:
    graph = generators.chain(n, seed=seed)
    deadline = slack * graph.total_work()  # critical path at unit speed
    return MinEnergyProblem(graph=graph, deadline=deadline, model=model)


def _caterpillar(n: int) -> TaskGraph:
    """A spine with one leaf per node: its SP tree nests O(n) levels deep."""
    g = TaskGraph(name="caterpillar")
    g.add_task(Task("R0", 1.0))
    for i in range(1, n // 2):
        g.add_task(Task(f"R{i}", 1.0))
        g.add_task(Task(f"L{i}", 1.0))
        g.add_edge(f"R{i - 1}", f"R{i}")
        g.add_edge(f"R{i - 1}", f"L{i}")
    return g


class TestDeepGraphs:
    """Deep chains and trees must not recurse, whatever the model."""

    def test_10k_chain_solve_tree_no_recursion(self):
        assert sys.getrecursionlimit() <= 10_000  # the point of the test
        problem = _chain_problem(DEEP, ContinuousModel())
        solution = solve_tree(problem)
        assert solution.solver == "continuous-tree"
        assert solution.makespan == pytest.approx(problem.deadline, rel=1e-9)
        # a chain's equivalent load is its total work; the optimum runs at W/D
        total = problem.graph.total_work()
        assert solution.metadata["equivalent_load"] == pytest.approx(total, rel=1e-9)
        assert solution.energy == pytest.approx(
            total ** 3 / problem.deadline ** 2, rel=1e-9)

    def test_10k_tree_continuous_dispatch(self):
        graph = generators.random_tree(DEEP, seed=3)
        deadline = 2.0 * longest_path_length(graph)
        problem = MinEnergyProblem(graph=graph, deadline=deadline,
                                   model=ContinuousModel())
        solution = solve(problem)
        assert solution.solver == "continuous-tree"
        check_solution(solution)

    def test_10k_in_tree_equivalent_load(self):
        graph = generators.random_tree(DEEP, seed=4, direction="in")
        root = graph.sinks()[0]
        load = tree_equivalent_load(graph, root, direction="in")
        assert load > 0

    def test_deep_chain_all_model_dispatches(self):
        """Every model's dispatch path completes on a deep chain."""
        modes = (0.4, 0.6, 0.8, 1.0)
        cases = [
            (DEEP, ContinuousModel(), {"continuous-chain"}),
            (DEEP, DiscreteModel(modes=modes), {"discrete-round-up"}),
            (2_000, VddHoppingModel(modes=modes), {"vdd-lp-highs"}),
            (DEEP, IncrementalModel.from_range(0.4, 1.0, 0.2),
             {"incremental-theorem5-round-up"}),
        ]
        for n, model, solvers in cases:
            solution = solve(_chain_problem(n, model))
            assert solution.solver in solvers, (model.name, solution.solver)
            assert solution.makespan <= solution.problem.deadline * (1 + 1e-9)

    def test_deep_caterpillar_series_parallel(self):
        graph = _caterpillar(2_200)  # SP tree nests beyond the recursion limit
        deadline = 2.0 * longest_path_length(graph)
        problem = MinEnergyProblem(graph=graph, deadline=deadline,
                                   model=ContinuousModel())
        solution = solve_series_parallel(problem)
        check_solution(solution)
        assert solution.metadata["equivalent_load"] > 0

    def test_deep_chain_discrete_exact_state_cap_falls_back(self):
        # auto dispatch must survive the chain DP's state-cap blow-up
        problem = _chain_problem(3_000, DiscreteModel(modes=(0.4, 0.6, 0.8, 1.0)))
        solution = solve(problem)
        assert solution.solver.startswith("discrete-")


class TestGraphIndex:
    def test_index_is_cached_and_invalidated(self):
        g = generators.chain(10, seed=0)
        idx = g.index()
        assert g.index() is idx  # cached
        g.add_task(Task("extra", 1.0))
        idx2 = g.index()
        assert idx2 is not idx
        assert idx2.n_tasks == 11
        g.add_edge("T10", "extra")
        idx3 = g.index()
        assert idx3 is not idx2
        assert idx3.n_edges == idx2.n_edges + 1
        g.remove_edge("T10", "extra")
        assert g.index().n_edges == idx2.n_edges

    def test_index_csr_matches_adjacency(self):
        g = generators.layered_dag(60, seed=5)
        idx = g.index()
        for i, name in enumerate(idx.names):
            preds = sorted(idx.names[p] for p in idx.predecessors_of(i))
            succs = sorted(idx.names[s] for s in idx.successors_of(i))
            assert preds == g.predecessors(name)
            assert succs == g.successors(name)

    def test_index_topo_and_levels(self):
        g = generators.layered_dag(80, seed=6)
        idx = g.index()
        position = {int(u): k for k, u in enumerate(idx.topo_order)}
        for u, v in g.edges():
            iu, iv = idx.index_of[u], idx.index_of[v]
            assert position[iu] < position[iv]
            assert idx.level[iu] < idx.level[iv]
        assert levels(g) == {name: int(idx.level[i]) + 1
                             for i, name in enumerate(idx.names)}

    def test_index_cycle_raises(self):
        g = TaskGraph(tasks=[("a", 1.0), ("b", 1.0)], edges=[("a", "b"), ("b", "a")])
        with pytest.raises(InvalidGraphError):
            g.index()
        with pytest.raises(InvalidGraphError):
            topological_order(g)

    def test_pickle_drops_cached_index(self):
        import pickle

        g = generators.chain(20, seed=0)
        g.index()
        clone = pickle.loads(pickle.dumps(g))
        assert clone._index is None
        assert clone.index().n_tasks == 20


def _reference_schedule(graph: TaskGraph, durations: dict[str, float]):
    """Dict-based ASAP reference (the pre-vectorization implementation)."""
    start: dict[str, float] = {}
    finish: dict[str, float] = {}
    for n in topological_order(graph):
        s = max((finish[p] for p in graph.predecessors(n)), default=0.0)
        start[n] = s
        finish[n] = s + durations[n]
    return start, finish


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("maker", [
        lambda: generators.chain(400, seed=11),             # deep: CSR scalar path
        lambda: generators.fork(300, seed=12),              # wide: level-batched path
        lambda: generators.layered_dag(150, seed=13),
        lambda: generators.erdos_dag(120, seed=14, edge_probability=0.1),
        lambda: generators.diamond(12, 13, seed=15),
    ])
    def test_schedule_matches_dict_reference(self, maker):
        graph = maker()
        rng = np.random.default_rng(99)
        durations = {n: float(rng.uniform(0.5, 2.0)) for n in graph.task_names()}
        sched = compute_schedule(graph, durations)
        ref_start, ref_finish = _reference_schedule(graph, durations)
        for n in graph.task_names():
            assert sched.start[n] == pytest.approx(ref_start[n], abs=1e-12)
            assert sched.finish[n] == pytest.approx(ref_finish[n], abs=1e-12)
        assert compute_makespan(graph, durations) == pytest.approx(
            max(ref_finish.values()), abs=1e-12)

    def test_energy_matches_per_task_sum(self):
        graph = generators.layered_dag(100, seed=21)
        rng = np.random.default_rng(7)
        assignment = SpeedAssignment(
            {n: float(rng.uniform(0.2, 1.5)) for n in graph.task_names()})
        vectorized = assignment.energy(graph, CUBIC)
        reference = sum(CUBIC.energy_for_work(graph.work(n), assignment.speed(n))
                        for n in graph.task_names())
        assert vectorized == pytest.approx(reference, rel=1e-12)

    def test_durations_vector_alignment(self):
        graph = generators.random_tree(64, seed=22)
        assignment = SpeedAssignment({n: 0.7 for n in graph.task_names()})
        vec = assignment.durations_vector(graph)
        mapping = assignment.durations(graph)
        idx = graph.index()
        for i, name in enumerate(idx.names):
            assert vec[i] == pytest.approx(mapping[name], rel=1e-15)


class TestSolveMany:
    def _problems(self):
        good1 = _chain_problem(8, ContinuousModel(s_max=1.0), slack=1.5, seed=1)
        graph = generators.chain(8, seed=2)
        infeasible = MinEnergyProblem(graph=graph, deadline=0.5 * graph.total_work(),
                                      model=ContinuousModel(s_max=1.0))
        good2 = _chain_problem(8, ContinuousModel(s_max=1.0), slack=2.0, seed=3)
        return [good1, infeasible, good2]

    def test_serial_fan_out_captures_failures(self):
        results = solve_many(self._problems(), workers=None)
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].error_type == "InfeasibleProblemError"
        assert results[1].energy is None
        stats = summarize(results)
        assert stats["n_failed"] == 1 and stats["n_solved"] == 2
        assert failed(results) == [results[1]]

    def test_worker_fan_out_matches_serial(self):
        serial = solve_many(self._problems(), workers=None)
        pooled = solve_many(self._problems(), workers=2, chunk=1)
        assert [r.index for r in pooled] == [0, 1, 2]  # input order preserved
        for a, b in zip(serial, pooled):
            assert a.ok == b.ok
            if a.ok:
                assert a.energy == pytest.approx(b.energy, rel=1e-12)
                assert a.solver == b.solver

    def test_keep_speeds(self):
        [result] = solve_many([_chain_problem(5, ContinuousModel())],
                              keep_speeds=True)
        assert isinstance(result, BatchResult)
        assert set(result.speeds) == set(f"T{i + 1}" for i in range(5))

    def test_chunked_dispatch(self):
        problems = [_chain_problem(6, ContinuousModel(), seed=s) for s in range(6)]
        results = solve_many(problems, workers=2, chunk=3)
        assert all(r.ok for r in results)
        with pytest.raises(ValueError):
            solve_many(problems, workers=2, chunk=0)


class TestSweep:
    def test_grid_shape_and_columns(self):
        table = sweep(graph_classes=("chain", "tree"), sizes=(8, 16),
                      slacks=(1.2, 2.0), alphas=(2.0, 3.0), repetitions=2, seed=5)
        assert len(table) == 2 * 2 * 2 * 2 * 2
        assert all(table.column("ok"))
        assert sweep_failures(table) == []
        assert set(table.column("alpha")) == {2.0, 3.0}
        # alpha reaches the solver: same seed grid, higher alpha => at most
        # equal energy on chains run at a common speed below 1
        assert all(e > 0 for e in table.column("energy"))

    def test_sweep_is_reproducible(self):
        kwargs = dict(graph_classes=("chain",), sizes=(8,), slacks=(1.5,),
                      repetitions=2, seed=42)
        t1 = sweep(**kwargs)
        t2 = sweep(**kwargs)
        seconds_col = list(t1.columns).index("seconds")
        strip = lambda rows: [[v for i, v in enumerate(r) if i != seconds_col]
                              for r in rows]
        assert strip(t1.rows) == strip(t2.rows)

    def test_sweep_models(self):
        table = sweep(graph_classes=("layered",), sizes=(12,), slacks=(1.5,),
                      model="discrete", n_modes=4, repetitions=1, seed=9)
        assert all(table.column("ok"))
        assert all(s.startswith("discrete-") for s in table.column("solver"))


class TestCliSweep:
    def test_cli_sweep_csv(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--classes", "chain", "--sizes", "6,12",
                     "--slacks", "1.5", "--csv"])
        out = capsys.readouterr().out
        assert code == 0
        lines = [l for l in out.strip().splitlines() if l]
        assert lines[0].startswith("graph_class,")
        assert len(lines) == 3  # header + 2 rows

    def test_cli_sweep_bad_sizes(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--sizes", "abc"]) == 2
        assert "error:" in capsys.readouterr().err


class TestConvexMetadataStage:
    def test_stage_recorded_for_convex_solve(self):
        from repro.continuous.general import solve_general_convex

        graph = generators.diamond(4, 5, seed=30)
        deadline = 1.8 * longest_path_length(graph)
        problem = MinEnergyProblem(graph=graph, deadline=deadline,
                                   model=ContinuousModel())
        solution = solve_general_convex(problem)
        meta = solution.metadata
        assert "stage" in meta
        assert isinstance(meta["iterations"], int)
        assert isinstance(meta["status"], int)
        assert isinstance(meta["message"], str)
        check_solution(solution)
