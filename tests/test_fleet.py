"""Tests for the fleet subsystem (:mod:`repro.fleet`) and its store/API
underpinnings.

Covers: claim-with-lease semantics on the job store (atomic claims,
lease renewal, release, ownership-conditional writes, expired-lease
reclaim, dependency gating), the concurrent-claimers race (exactly one
winner, typed loser), sharded submission and the dependent merge job,
the ``FleetWorker`` drain loop (multi-worker parity with an unsharded
sweep, SIGTERM-style release, reclaim of a dead worker's lease), the
ops surface (``/v1/healthz``, ``/v1/queue``, bearer-token auth,
``repro jobs --prune``), jittered backoff bounds, the env-configurable
lease/heartbeat timings, and the new CLI verbs
(``submit --shards`` / ``work`` / ``jobs --prune``).
"""

from __future__ import annotations

import itertools
import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import (
    DiskTransport,
    HTTPTransport,
    JobStore,
    SweepRequest,
    backoff_intervals,
)
from repro.batch import rows_signature, sweep
from repro.fleet import (
    FleetWorker,
    execute_merge_job,
    parse_duration,
    prune_records,
    queue_stats,
    shard_dump_from_record,
    submit_sharded,
)
from repro.server import SolverHTTPServer
from repro.utils.errors import (
    AuthError,
    JobStateError,
    MergeError,
)

REQUEST = SweepRequest(graph_classes=("chain",), sizes=(6, 8),
                       slacks=(1.5, 2.0), repetitions=1, seed=7,
                       name="fleet")


def reference_signature():
    table = sweep(graph_classes=("chain",), sizes=(6, 8), slacks=(1.5, 2.0),
                  repetitions=1, seed=7)
    return rows_signature(table)


# --------------------------------------------------------------------- #
# claim / lease semantics
# --------------------------------------------------------------------- #
class TestClaimLease:
    def test_claim_takes_a_pending_record(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        record = store.claim(job_id, "w1", 30.0)
        assert record["status"] == "running"
        assert record["worker_id"] == "w1"
        assert record["lease_expires_at"] > time.time()
        assert record["claim_count"] == 1
        assert record.get("reclaims", 0) == 0

    def test_live_lease_cannot_be_claimed(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        store.claim(job_id, "w1", 30.0)
        with pytest.raises(JobStateError, match="running under w1"):
            store.claim(job_id, "w2", 30.0)

    def test_expired_lease_is_reclaimed_with_counters(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        store.claim(job_id, "w-dead", 0.01)
        time.sleep(0.05)
        record = store.claim(job_id, "w-live", 30.0)
        assert record["worker_id"] == "w-live"
        assert record["claim_count"] == 2
        assert record["reclaims"] == 1

    def test_terminal_records_cannot_be_claimed(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        store.transition(job_id, "running")
        store.transition(job_id, "done")
        with pytest.raises(JobStateError, match="terminal"):
            store.claim(job_id, "w1", 30.0)

    def test_claim_validates_its_arguments(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        with pytest.raises(ValueError, match="worker_id"):
            store.claim(job_id, "", 30.0)
        with pytest.raises(ValueError, match="lease_seconds"):
            store.claim(job_id, "w1", 0.0)

    def test_renew_extends_only_the_holders_lease(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        before = store.claim(job_id, "w1", 5.0)["lease_expires_at"]
        time.sleep(0.02)
        after = store.renew_lease(job_id, "w1", 5.0, done=1)
        assert after["lease_expires_at"] > before
        assert after["done"] == 1
        with pytest.raises(JobStateError, match="lease"):
            store.renew_lease(job_id, "w2", 5.0)

    def test_release_hands_the_record_back(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        store.claim(job_id, "w1", 30.0)
        with pytest.raises(JobStateError, match="release"):
            store.release(job_id, "w2")  # not the holder
        record = store.release(job_id, "w1")
        assert record["status"] == "pending"
        assert record["worker_id"] is None
        assert record["lease_expires_at"] is None
        # and the next claim bumps claim_count without a reclaim
        again = store.claim(job_id, "w2", 30.0)
        assert (again["claim_count"], again.get("reclaims", 0)) == (2, 0)

    def test_stalled_ex_owner_cannot_write_over_the_new_owner(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        store.claim(job_id, "w-old", 0.01)
        time.sleep(0.05)
        store.claim(job_id, "w-new", 30.0)
        # the ex-owner wakes up and tries to finish "its" job
        with pytest.raises(JobStateError, match="owned by 'w-new'"):
            store.transition(job_id, "done", expected_worker="w-old")
        with pytest.raises(JobStateError, match="lost"):
            store.update(job_id, done=3, expected_worker="w-old")

    def test_claimable_lists_ready_and_orphaned_records(self, tmp_path):
        store = JobStore(tmp_path)
        ready = store.create(REQUEST, job_id="job-ready")["job_id"]
        orphan = store.create(REQUEST, job_id="job-orphan")["job_id"]
        store.claim(orphan, "w-dead", 0.01)
        held = store.create(REQUEST, job_id="job-held")["job_id"]
        store.claim(held, "w-live", 60.0)
        time.sleep(0.05)
        ids = {r["job_id"] for r in store.claimable()}
        assert ids == {ready, orphan}


class TestConcurrentClaim:
    def test_exactly_one_of_two_racing_claimers_wins(self, tmp_path):
        """The satellite acceptance test: two workers race one expired
        record through *separate* store instances; the mutex guarantees
        one winner and one typed loser."""
        job_id = JobStore(tmp_path).create(REQUEST)["job_id"]
        JobStore(tmp_path).claim(job_id, "w-dead", 0.01)
        time.sleep(0.05)

        stores = [JobStore(tmp_path), JobStore(tmp_path)]
        barrier = threading.Barrier(2)
        outcomes: dict[str, object] = {}

        def racer(name: str, store: JobStore) -> None:
            barrier.wait()
            try:
                outcomes[name] = store.claim(job_id, name, 30.0)
            except JobStateError as exc:
                outcomes[name] = exc

        threads = [threading.Thread(target=racer, args=(f"w{i}", s))
                   for i, s in enumerate(stores)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)

        winners = [n for n, r in outcomes.items() if isinstance(r, dict)]
        losers = [n for n, r in outcomes.items()
                  if isinstance(r, JobStateError)]
        assert len(winners) == 1 and len(losers) == 1, outcomes
        record = JobStore(tmp_path).load(job_id)
        assert record["worker_id"] == winners[0]
        assert record["claim_count"] == 2
        assert "live lease" in str(outcomes[losers[0]])


# --------------------------------------------------------------------- #
# sharded submission and the merge job
# --------------------------------------------------------------------- #
class TestShardSubmit:
    def test_parks_shards_plus_a_dependent_merge(self, tmp_path):
        store = JobStore(tmp_path)
        shard_records, merge_record = submit_sharded(store, REQUEST, 3)
        assert len(shard_records) == 3
        fingerprints = {r["grid_fingerprint"] for r in shard_records}
        assert fingerprints == {merge_record["grid_fingerprint"]}
        assert merge_record["job_type"] == "merge"
        assert merge_record["depends_on"] == \
            [r["job_id"] for r in shard_records]
        assert merge_record["total"] == 4  # the full grid, 2 sizes x 2 slacks
        for i, record in enumerate(shard_records):
            assert record["status"] == "pending"
            assert record["job_type"] == "shard"
            assert record["request"]["shard"] == f"{i + 1}/3"

    def test_rejects_bad_shard_counts_and_presharded_requests(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ValueError, match="shards"):
            submit_sharded(store, REQUEST, 0)
        import dataclasses
        presharded = dataclasses.replace(REQUEST, shard="1/2")
        with pytest.raises(ValueError, match="already names shard"):
            submit_sharded(store, presharded, 2)

    def test_merge_is_gated_on_its_shards(self, tmp_path):
        store = JobStore(tmp_path)
        shard_records, merge_record = submit_sharded(store, REQUEST, 2)
        merge_id = merge_record["job_id"]
        with pytest.raises(JobStateError, match="waiting on 2 dependencies"):
            store.claim(merge_id, "w1", 30.0)
        assert merge_id not in {r["job_id"] for r in store.claimable()}
        # finishing the shards (even as failures) unblocks the claim
        for record in shard_records:
            store.transition(record["job_id"], "running")
            store.transition(record["job_id"], "failed", error="boom")
        assert merge_id in {r["job_id"] for r in store.claimable()}
        store.claim(merge_id, "w1", 30.0)

    def test_merge_refuses_a_failed_shard_by_name(self, tmp_path):
        store = JobStore(tmp_path)
        shard_records, merge_record = submit_sharded(store, REQUEST, 2)
        bad = shard_records[0]["job_id"]
        for record in shard_records:
            store.transition(record["job_id"], "running")
        store.transition(bad, "failed", error="deadline infeasible")
        store.transition(shard_records[1]["job_id"], "done")
        merge_id = merge_record["job_id"]
        store.claim(merge_id, "w1", 30.0)
        assert execute_merge_job(store, merge_id, worker_id="w1") == "failed"
        payload = store.load(merge_id)
        assert payload["status"] == "failed"
        assert bad in payload["error"]
        assert "partial grid" in payload["error"]

    def test_shard_dump_needs_a_manifest_and_rows(self):
        with pytest.raises(MergeError, match="no shard manifest"):
            shard_dump_from_record({"job_id": "job-x", "rows": []})
        with pytest.raises(MergeError, match="no result rows"):
            shard_dump_from_record({"job_id": "job-x",
                                    "manifest": {"fingerprint": "f"}})


# --------------------------------------------------------------------- #
# the worker loop
# --------------------------------------------------------------------- #
class TestFleetWorker:
    def _worker(self, tmp_path, **kwargs):
        kwargs.setdefault("use_threads", True)
        kwargs.setdefault("drain", 0.3)
        kwargs.setdefault("heartbeat_seconds", 0.2)
        kwargs.setdefault("lease_seconds", 30.0)
        return FleetWorker(tmp_path / "jobs",
                           cache_dir=str(tmp_path / "cache"), **kwargs)

    def test_two_workers_drain_a_sharded_grid_to_parity(self, tmp_path):
        """The tentpole acceptance test: a sharded submission drained by
        a small fleet merges to exactly the unsharded sweep's rows."""
        store = JobStore(tmp_path / "jobs")
        _, merge_record = submit_sharded(store, REQUEST, 3)
        workers = [self._worker(tmp_path, worker_id=f"w{i}")
                   for i in range(2)]
        threads = [threading.Thread(target=w.run) for w in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        claimed = sum(w.stats["claimed"] for w in workers)
        assert claimed == 4  # 3 shards + 1 merge, no double execution
        merged = store.load(merge_record["job_id"])
        assert merged["status"] == "done", merged.get("error")
        # the merged record is fetchable like any terminal job...
        transport = DiskTransport(tmp_path / "jobs", use_threads=True)
        table = transport.fetch_results(merge_record["job_id"])
        # ...and row-for-row identical to the unsharded sweep
        assert rows_signature(table) == reference_signature()
        assert table.manifest["fingerprint"] == \
            merge_record["grid_fingerprint"]

    def test_worker_reclaims_a_dead_workers_lease(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        job_id = store.create(REQUEST)["job_id"]
        store.claim(job_id, "w-dead", 0.01)  # the owner is SIGKILLed
        time.sleep(0.05)
        summary = self._worker(tmp_path, worker_id="w-live").run()
        assert summary["outcomes"] == {"done": 1}
        record = store.load(job_id)
        assert record["status"] == "done"
        assert record["worker_id"] == "w-live"
        assert record["reclaims"] == 1

    def test_should_stop_releases_the_claim_back_to_pending(self, tmp_path):
        """The SIGTERM path: a stopping worker releases its in-flight
        job instead of holding the lease to expiry."""
        worker = self._worker(tmp_path, worker_id="w-term")
        store = worker.store
        job_id = store.create(REQUEST)["job_id"]
        store.claim(job_id, worker.worker_id, 30.0)
        worker.stop()  # as the SIGTERM handler would
        outcome = worker.transport.run_claimed(
            job_id, REQUEST, should_stop=worker.should_stop)
        assert outcome == "released"
        record = store.load(job_id)
        assert record["status"] == "pending"
        assert record["worker_id"] is None

    def test_losing_the_lease_mid_run_walks_away_silently(self, tmp_path):
        worker = self._worker(tmp_path, worker_id="w-slow")
        store = worker.store
        job_id = store.create(REQUEST)["job_id"]
        store.claim(job_id, worker.worker_id, 30.0)
        # another worker takes over (reclaim after a simulated expiry)
        store.reclaim(job_id)
        store.claim(job_id, "w-thief", 60.0)
        outcome = worker.transport.run_claimed(job_id, REQUEST)
        assert outcome == "lost"
        assert store.load(job_id)["worker_id"] == "w-thief"

    def test_drain_exits_an_empty_queue_and_validates(self, tmp_path):
        summary = self._worker(tmp_path, drain=0.2).run()
        assert summary["claimed"] == 0
        assert summary["stopped"] is False
        with pytest.raises(ValueError, match="drain"):
            self._worker(tmp_path, drain=-1.0)


# --------------------------------------------------------------------- #
# ops: queue stats, prune, durations
# --------------------------------------------------------------------- #
class TestQueueStats:
    def test_counters_cover_every_bucket(self, tmp_path):
        store = JobStore(tmp_path)
        _, merge_record = submit_sharded(store, REQUEST, 2)  # 2 ready + gated
        live = store.create(REQUEST, job_id="job-live")["job_id"]
        store.claim(live, "w-live", 60.0)
        stale = store.create(REQUEST, job_id="job-stale")["job_id"]
        store.claim(stale, "w-dead", 0.01)
        done = store.create(REQUEST, job_id="job-done")["job_id"]
        store.transition(done, "running")
        store.transition(done, "done")
        time.sleep(0.05)

        stats = queue_stats(store)
        assert stats["total"] == 6
        assert stats["pending_ready"] == 2
        assert stats["pending_blocked"] == 1  # the merge job
        assert stats["running_live"] == 1
        assert stats["running_stale"] == 1
        assert stats["depth"] == 3  # ready + stale
        assert stats["workers"] == ["w-live"]
        assert stats["by_status"] == {"pending": 3, "running": 2, "done": 1}
        assert stats["oldest_ready_age"] >= 0.0
        assert stats["unreadable"] == 0

    def test_unreadable_records_are_counted_not_hidden(self, tmp_path):
        store = JobStore(tmp_path)
        (tmp_path / "job-bad.json").write_text("{ nope")
        assert queue_stats(store)["unreadable"] == 1


class TestPrune:
    def _terminal(self, store, job_id, status, *, finished_at):
        store.create(REQUEST, job_id=job_id)
        store.transition(job_id, "running")
        store.transition(job_id, status)
        store._write({**store.load(job_id), "finished_at": finished_at})
        return job_id

    def test_prunes_by_age_and_status_only(self, tmp_path):
        store = JobStore(tmp_path)
        now = time.time()
        old = self._terminal(store, "job-old", "done", finished_at=now - 3600)
        new = self._terminal(store, "job-new", "done", finished_at=now - 10)
        pending = store.create(REQUEST, job_id="job-pending")["job_id"]
        pruned = prune_records(store, older_than=60.0)
        assert [p["job_id"] for p in pruned] == [old]
        remaining = {r["job_id"] for r in store.scan()[0]}
        assert remaining == {new, pending}

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = JobStore(tmp_path)
        self._terminal(store, "job-x", "failed", finished_at=time.time() - 99)
        pruned = prune_records(store, older_than=1.0, dry_run=True)
        assert len(pruned) == 1
        assert store.load("job-x")["status"] == "failed"

    def test_refuses_non_terminal_statuses(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ValueError, match="queue, not garbage"):
            prune_records(store, statuses=("pending",))
        with pytest.raises(ValueError, match="older-than"):
            prune_records(store, older_than=-5.0)

    def test_prune_removes_the_lock_sidecar_too(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = self._terminal(store, "job-locked", "done",
                                finished_at=time.time() - 3600)
        lock = tmp_path / f".{job_id}.lock"
        lock.write_text("")  # a dead claimer's leftover
        prune_records(store, older_than=60.0)
        assert not lock.exists()
        assert not store.path(job_id).exists()


class TestParseDuration:
    @pytest.mark.parametrize("text,expected", [
        ("90", 90.0), ("90s", 90.0), ("15m", 900.0), ("2h", 7200.0),
        ("7d", 604800.0), ("1w", 604800.0), ("1.5h", 5400.0),
    ])
    def test_units(self, text, expected):
        assert parse_duration(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "10x", "-5s", "0"])
    def test_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_duration(text)


# --------------------------------------------------------------------- #
# ops endpoints and bearer auth over HTTP
# --------------------------------------------------------------------- #
class TestOpsEndpoints:
    @pytest.fixture
    def server(self, tmp_path):
        transport = DiskTransport(tmp_path / "jobs", use_threads=True)
        with SolverHTTPServer(transport, token="hunter2").start() as srv:
            yield srv

    def _get(self, url, token=None):
        headers = {"Authorization": f"Bearer {token}"} if token else {}
        req = urllib.request.Request(url, headers=headers)
        with urllib.request.urlopen(req, timeout=30) as response:
            return json.loads(response.read())

    def test_healthz_is_open_even_with_auth_on(self, server):
        body = self._get(f"{server.url}/v1/healthz")
        assert body["status"] == "ok"
        assert body["auth"] is True

    def test_missing_or_wrong_token_is_a_401(self, server):
        for headers in ({}, {"Authorization": "Bearer wrong"},
                        {"Authorization": "Basic hunter2"}):
            req = urllib.request.Request(f"{server.url}/v1/jobs",
                                         headers=headers)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=30)
            assert excinfo.value.code == 401
            body = json.loads(excinfo.value.read())
            assert body["error"]["type"] == "AuthError"

    def test_http_transport_raises_the_typed_auth_error(self, server):
        with pytest.raises(AuthError, match="bearer token"):
            HTTPTransport(server.url).jobs()

    def test_authed_transport_sees_the_queue(self, server):
        submit_sharded(server.transport.store, REQUEST, 2)
        transport = HTTPTransport(server.url, token="hunter2")
        assert transport.jobs() is not None
        body = self._get(f"{server.url}/v1/queue", token="hunter2")
        assert body["pending_ready"] == 2
        assert body["pending_blocked"] == 1
        assert body["depth"] == 2

    def test_token_defaults_to_the_environment(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_TOKEN", "hunter2")
        assert HTTPTransport(server.url).jobs() == []

    def test_open_server_reports_auth_off(self, tmp_path):
        transport = DiskTransport(tmp_path / "open-jobs", use_threads=True)
        with SolverHTTPServer(transport).start() as srv:
            body = self._get(f"{srv.url}/v1/healthz")
            assert body["auth"] is False
            assert self._get(f"{srv.url}/v1/queue")["total"] == 0


# --------------------------------------------------------------------- #
# jittered backoff and configurable timings
# --------------------------------------------------------------------- #
class TestJitterAndTimings:
    def test_full_jitter_stays_within_the_cap(self):
        rng = random.Random(42)
        caps = list(itertools.islice(
            backoff_intervals(0.1, factor=2.0, maximum=1.0), 8))
        jittered = list(itertools.islice(
            backoff_intervals(0.1, factor=2.0, maximum=1.0,
                              jitter=1.0, rng=rng), 8))
        for value, cap in zip(jittered, caps):
            assert 0.0 < value <= cap

    def test_zero_jitter_keeps_the_deterministic_schedule(self):
        plain = list(itertools.islice(backoff_intervals(0.1), 5))
        zero = list(itertools.islice(backoff_intervals(0.1, jitter=0.0), 5))
        assert plain == zero

    def test_jitter_out_of_range_is_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            next(backoff_intervals(0.1, jitter=1.5))

    def test_timings_come_from_the_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STALE_RUNNER_SECONDS", "42")
        monkeypatch.setenv("REPRO_HEARTBEAT_SECONDS", "3")
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "21")
        transport = DiskTransport(tmp_path)
        assert transport.stale_after == 42.0
        assert transport.heartbeat_seconds == 3.0
        assert transport.lease_seconds == 21.0

    def test_bad_environment_values_are_loud(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEASE_SECONDS", "soon")
        with pytest.raises(ValueError, match="REPRO_LEASE_SECONDS"):
            DiskTransport(tmp_path)

    def test_lease_must_outlive_the_heartbeat(self, tmp_path):
        with pytest.raises(ValueError, match="must exceed"):
            DiskTransport(tmp_path, lease_seconds=1.0, heartbeat_seconds=2.0)

    def test_lease_defaults_to_the_stale_threshold(self, tmp_path):
        transport = DiskTransport(tmp_path, stale_after=25.0)
        assert transport.lease_seconds == 25.0


# --------------------------------------------------------------------- #
# CLI verbs
# --------------------------------------------------------------------- #
class TestFleetCli:
    def test_submit_shards_then_work_drains_to_parity(self, tmp_path, capsys):
        from repro.cli import main

        jobs_dir = str(tmp_path / "jobs")
        code = main(["submit", "--classes", "chain", "--sizes", "6,8",
                     "--slacks", "1.5,2.0", "--seed", "7",
                     "--repetitions", "1",
                     "--jobs-dir", jobs_dir, "--shards", "2"])
        assert code == 0
        captured = capsys.readouterr()
        merge_id = captured.out.strip()
        assert merge_id.endswith("-merge")
        assert "parked 2 shard job(s) + 1 merge job" in captured.err

        code = main(["work", "--jobs-dir", jobs_dir, "--drain", "0.3",
                     "--worker-id", "cli-w", "--workers", "1",
                     "--heartbeat", "0.2", "--lease", "30"])
        assert code == 0
        captured = capsys.readouterr()
        summary = json.loads(captured.out)
        assert summary["worker_id"] == "cli-w"
        assert summary["claimed"] == 3
        assert summary["outcomes"] == {"done": 3}
        assert "draining" in captured.err

        assert main(["results", merge_id, "--jobs-dir", jobs_dir,
                     "--csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5  # header + the full 4-cell grid

    def test_submit_shards_refuses_a_url_backend(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["submit", "--classes", "chain", "--sizes", "6",
                     "--url", "http://localhost:1", "--shards", "2"])
        assert code == 2
        assert "--jobs-dir" in capsys.readouterr().err

    def test_jobs_prune_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        jobs_dir = tmp_path / "jobs"
        store = JobStore(jobs_dir)
        job_id = store.create(REQUEST)["job_id"]
        store.transition(job_id, "running")
        store.transition(job_id, "done")

        assert main(["jobs", "--jobs-dir", str(jobs_dir), "--prune",
                     "--dry-run"]) == 0
        captured = capsys.readouterr()
        assert "would prune 1 record(s)" in captured.out
        assert job_id in captured.err
        assert store.path(job_id).exists()

        # an age bar nothing clears yet keeps the record
        assert main(["jobs", "--jobs-dir", str(jobs_dir), "--prune",
                     "--older-than", "1h"]) == 0
        assert "pruned 0 record(s)" in capsys.readouterr().out

        assert main(["jobs", "--jobs-dir", str(jobs_dir), "--prune"]) == 0
        assert "pruned 1 record(s)" in capsys.readouterr().out
        assert not store.path(job_id).exists()

    def test_jobs_prune_rejects_non_terminal_statuses(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["jobs", "--jobs-dir", str(tmp_path), "--prune",
                     "--prune-status", "running"])
        assert code == 2
        assert "terminal" in capsys.readouterr().err

    def test_jobs_prune_rejects_a_garbage_duration(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["jobs", "--jobs-dir", str(tmp_path), "--prune",
                     "--older-than", "nonsense"])
        assert code == 2
        assert "unparsable duration" in capsys.readouterr().err

    def test_work_rejects_a_non_positive_lease_pairing(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["work", "--jobs-dir", str(tmp_path), "--drain", "0.2",
                     "--lease", "1", "--heartbeat", "2"])
        assert code == 2
        assert "must exceed" in capsys.readouterr().err
