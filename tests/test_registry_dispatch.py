"""Tests for the registry-based solver dispatch.

Covers: every model resolving through the registry (default and named
methods), aliases, the typed errors for unknown methods/options and
ill-typed option values, the legacy call-signature compatibility
(positional problem, ``exact=`` tri-state, loose ``**kwargs``), and the
``exact=True``-with-a-polynomial-model guard.
"""

from __future__ import annotations

import pytest

from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.problem import MinEnergyProblem
from repro.core.registry import REGISTRY, OptionSpec, SolverRegistry
from repro.core.validation import check_solution
from repro.graphs import generators
from repro.solve import ensure_backends_loaded, resolve_backend, solve, solver_methods
from repro.utils.errors import (
    InvalidModelError,
    InvalidOptionError,
    UnknownOptionError,
    UnknownSolverError,
)

MODES = (0.4, 0.6, 0.8, 1.0)


def _problem(model, *, n: int = 10, slack: float = 1.6, seed: int = 1) -> MinEnergyProblem:
    graph = generators.layered_dag(n, seed=seed)
    deadline = slack * graph.total_work()
    return MinEnergyProblem(graph=graph, deadline=deadline, model=model)


class TestRegistryResolution:
    def test_all_four_models_registered(self):
        ensure_backends_loaded()
        assert set(REGISTRY.models()) == {
            "continuous", "discrete", "vdd-hopping", "incremental"}

    def test_default_methods(self):
        assert solver_methods("continuous")[0] == "auto"
        assert solver_methods("vdd-hopping")[0] == "lp"
        assert solver_methods("discrete")[0] == "auto"
        assert solver_methods("incremental")[0] == "theorem5"

    def test_solver_methods_from_problem(self):
        problem = _problem(ContinuousModel(s_max=1.0))
        assert "gp-slsqp" in solver_methods(problem)

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownSolverError):
            REGISTRY.resolve("quantum")

    def test_unknown_method_lists_alternatives(self):
        problem = _problem(ContinuousModel(s_max=1.0))
        with pytest.raises(UnknownSolverError, match="gp-slsqp"):
            solve(problem, method="not-a-method")

    def test_alias_resolves(self):
        ensure_backends_loaded()
        assert REGISTRY.resolve("continuous", "convex").method == "gp-slsqp"
        assert REGISTRY.resolve("incremental", "approx").method == "theorem5"

    def test_describe_covers_every_backend(self):
        ensure_backends_loaded()
        entries = REGISTRY.describe()
        assert {(e["model"], e["method"]) for e in entries} >= {
            ("continuous", "auto"), ("continuous", "gp-slsqp"),
            ("vdd-hopping", "lp"), ("vdd-hopping", "mixing"),
            ("discrete", "auto"), ("discrete", "exact"), ("discrete", "heuristic"),
            ("incremental", "theorem5"), ("incremental", "exact"),
        }
        assert sum(1 for e in entries if e["default"]) == 4


class TestDispatchPerModel:
    def test_continuous_named_methods(self):
        problem = _problem(ContinuousModel(s_max=1.0))
        auto = solve(problem)
        convex = solve(problem, method="gp-slsqp")
        for s in (auto, convex):
            check_solution(s)
        assert convex.solver == "continuous-convex"
        assert auto.energy == pytest.approx(convex.energy, rel=1e-4)

    def test_vdd_lp_backend_option(self):
        problem = _problem(VddHoppingModel(modes=MODES), n=8)
        highs = solve(problem, method="lp", options={"backend": "highs"})
        simplex = solve(problem, method="lp", options={"backend": "simplex"})
        assert highs.energy == pytest.approx(simplex.energy, rel=1e-6)

    def test_vdd_mixing_method(self):
        problem = _problem(VddHoppingModel(modes=MODES), n=8)
        mixing = solve(problem, method="mixing")
        check_solution(mixing)
        assert "mixing" in mixing.solver

    def test_discrete_methods(self):
        problem = _problem(DiscreteModel(modes=MODES), n=8)
        exact = solve(problem, method="exact")
        heuristic = solve(problem, method="heuristic")
        assert exact.optimal
        assert heuristic.energy >= exact.energy - 1e-9

    def test_incremental_methods(self):
        problem = _problem(IncrementalModel.from_range(0.4, 1.0, 0.2), n=8)
        approx = solve(problem, method="theorem5", options={"k": 1000})
        check_solution(approx)
        assert approx.solver == "incremental-theorem5-round-up"


class TestOptionValidation:
    def test_unknown_option_raises(self):
        problem = _problem(ContinuousModel(s_max=1.0))
        with pytest.raises(UnknownOptionError, match="max_iterations"):
            solve(problem, method="gp-slsqp", options={"max_iter": 5})

    def test_unknown_kwarg_raises_instead_of_being_swallowed(self):
        # pre-registry, a misspelled kwarg silently changed nothing
        problem = _problem(VddHoppingModel(modes=MODES), n=6)
        with pytest.raises(UnknownOptionError):
            solve(problem, bakend="simplex")

    def test_wrong_type_raises(self):
        problem = _problem(ContinuousModel(s_max=1.0))
        with pytest.raises(InvalidOptionError, match="max_iterations"):
            solve(problem, method="gp-slsqp", options={"max_iterations": "many"})

    def test_bool_is_not_an_int(self):
        problem = _problem(DiscreteModel(modes=MODES), n=6)
        with pytest.raises(InvalidOptionError):
            solve(problem, options={"exact_threshold": True})

    def test_out_of_choices_raises(self):
        problem = _problem(VddHoppingModel(modes=MODES), n=6)
        with pytest.raises(InvalidOptionError, match="backend"):
            solve(problem, method="lp", options={"backend": "cplex"})

    def test_conflicting_option_spellings_raise(self):
        problem = _problem(VddHoppingModel(modes=MODES), n=6)
        with pytest.raises(InvalidOptionError, match="backend"):
            solve(problem, options={"backend": "highs"}, backend="simplex")

    def test_legacy_kwargs_still_work(self):
        problem = _problem(VddHoppingModel(modes=MODES), n=6)
        solution = solve(problem, backend="simplex")
        assert solution.solver.endswith("simplex")
        inc = _problem(IncrementalModel.from_range(0.4, 1.0, 0.2), n=6)
        assert solve(inc, k=10).metadata["k"] == 10


class TestExactRouting:
    def test_exact_true_polynomial_model_raises(self):
        for model in (ContinuousModel(s_max=1.0), VddHoppingModel(modes=MODES)):
            with pytest.raises(InvalidModelError, match="contradictory"):
                solve(_problem(model, n=6), exact=True)

    def test_exact_false_polynomial_model_is_fine(self):
        solution = solve(_problem(ContinuousModel(s_max=1.0), n=6), exact=False)
        check_solution(solution)

    def test_exact_true_routes_incremental_to_exact_backend(self):
        problem = _problem(IncrementalModel.from_range(0.4, 1.0, 0.3), n=5)
        assert resolve_backend(problem, None, exact=True).method == "exact"
        solution = solve(problem, exact=True)
        assert solution.optimal

    def test_exact_conflicts_with_heuristic_method(self):
        problem = _problem(DiscreteModel(modes=MODES), n=6)
        with pytest.raises(InvalidOptionError, match="conflicts"):
            solve(problem, method="heuristic", exact=True)

    def test_exact_tristate_discrete_auto(self):
        problem = _problem(DiscreteModel(modes=MODES), n=6)
        assert solve(problem, exact=True).optimal
        heuristic = solve(problem, exact=False)
        assert heuristic.solver.startswith("discrete-")


class TestRegistryMechanics:
    def test_registration_and_default_bookkeeping(self):
        registry = SolverRegistry()
        registry.register("toy", "a")(lambda p: "A")
        registry.register("toy", "b", default=True,
                          options=(OptionSpec("x", (int,)),))(lambda p, x=0: "B")
        assert registry.default_method("toy") == "b"
        assert registry.methods("toy") == ["b", "a"]
        backend = registry.resolve("toy")
        assert backend.method == "b"
        assert backend.validate_options({"x": 3}) == {"x": 3}
        with pytest.raises(UnknownOptionError):
            backend.validate_options({"y": 1})
        with pytest.raises(UnknownSolverError):
            registry.resolve("toy", "c")

    def test_reregistration_replaces(self):
        registry = SolverRegistry()
        registry.register("toy", "a", default=True)(lambda p: 1)
        registry.register("toy", "a", default=True)(lambda p: 2)
        assert registry.resolve("toy", "a").fn(None) == 2
