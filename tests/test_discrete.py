"""Tests for the Discrete-model solvers (Theorem 4) and the hardness gadget."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.continuous.bounds import continuous_lower_bound
from repro.core.models import ContinuousModel, DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.validation import check_solution
from repro.discrete import (
    decide_two_partition_via_energy,
    solve_chain_discrete_exact,
    solve_discrete,
    solve_discrete_best_heuristic,
    solve_discrete_exact,
    solve_discrete_greedy_reclaim,
    solve_discrete_round_up,
    solve_independent_discrete_exact,
    two_partition_gadget,
)
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import (
    InfeasibleProblemError,
    InvalidGraphError,
    InvalidModelError,
    SolverError,
)


def _problem(graph, slack, modes=(0.4, 0.7, 1.0)):
    model = DiscreteModel(modes=modes)
    min_makespan = longest_path_length(graph) / model.max_speed
    return MinEnergyProblem(graph=graph, deadline=slack * min_makespan, model=model)


def _brute_force_optimum(problem):
    """Reference exhaustive search over all mode assignments (tiny instances)."""
    import itertools

    graph = problem.graph
    names = graph.task_names()
    modes = problem.model.modes
    best = None
    from repro.core.solution import SpeedAssignment, compute_schedule

    for combo in itertools.product(modes, repeat=len(names)):
        speeds = dict(zip(names, combo))
        durations = {n: graph.work(n) / speeds[n] for n in names}
        if compute_schedule(graph, durations).makespan > problem.deadline * (1 + 1e-9):
            continue
        energy = SpeedAssignment(speeds).energy(graph, problem.power)
        if best is None or energy < best:
            best = energy
    return best


class TestExactSolvers:
    def test_exact_matches_brute_force_on_chain(self):
        g = generators.chain(5, seed=0)
        p = _problem(g, 1.5)
        exact = solve_discrete_exact(p)
        check_solution(exact)
        assert exact.energy == pytest.approx(_brute_force_optimum(p), rel=1e-9)

    def test_exact_matches_brute_force_on_layered(self):
        g = generators.layered_dag(7, seed=1)
        p = _problem(g, 1.4)
        exact = solve_discrete_exact(p)
        check_solution(exact)
        assert exact.energy == pytest.approx(_brute_force_optimum(p), rel=1e-9)

    def test_exact_requires_mode_model(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=100.0, model=ContinuousModel())
        with pytest.raises(InvalidModelError):
            solve_discrete_exact(p)

    def test_exact_infeasible_instance(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=1.0,
                             model=DiscreteModel(modes=(0.5, 1.0)))
        with pytest.raises(InfeasibleProblemError):
            solve_discrete_exact(p)

    def test_exact_node_cap(self):
        g = generators.layered_dag(16, seed=2)
        p = _problem(g, 1.5, modes=(0.2, 0.4, 0.6, 0.8, 1.0))
        with pytest.raises(SolverError):
            solve_discrete_exact(p, max_nodes=10)

    def test_exact_accepts_incremental_model(self):
        g = generators.chain(4, seed=3)
        model = IncrementalModel.from_range(0.5, 1.0, 0.25)
        p = MinEnergyProblem(graph=g, deadline=g.total_work() / 0.6, model=model)
        s = solve_discrete_exact(p)
        check_solution(s)

    def test_chain_dp_matches_branch_and_bound(self):
        g = generators.chain(8, seed=4)
        p = _problem(g, 1.6)
        dp = solve_chain_discrete_exact(p)
        bb = solve_discrete_exact(p)
        check_solution(dp)
        assert dp.energy == pytest.approx(bb.energy, rel=1e-9)

    def test_chain_dp_rejects_non_chain(self, small_fork):
        p = _problem(small_fork, 1.5)
        with pytest.raises(InvalidGraphError):
            solve_chain_discrete_exact(p)

    def test_chain_dp_infeasible(self):
        g = generators.chain(3, works=[1.0, 1.0, 1.0])
        p = MinEnergyProblem(graph=g, deadline=2.0, model=DiscreteModel(modes=(0.5, 1.0)))
        with pytest.raises(InfeasibleProblemError):
            solve_chain_discrete_exact(p)

    def test_independent_exact(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 4.0), ("C", 2.0)])
        p = MinEnergyProblem(graph=g, deadline=5.0,
                             model=DiscreteModel(modes=(0.5, 1.0, 2.0)))
        s = solve_independent_discrete_exact(p)
        check_solution(s)
        # A: 1/0.5 = 2 <= 5 -> slowest; B: 4/0.5 = 8 > 5, 4/1 = 4 <= 5 -> 1.0
        assert s.speeds()["A"] == 0.5
        assert s.speeds()["B"] == 1.0
        assert s.speeds()["C"] == 0.5

    def test_independent_exact_rejects_edges(self, small_chain):
        p = _problem(small_chain, 1.5)
        with pytest.raises(InvalidGraphError):
            solve_independent_discrete_exact(p)

    def test_independent_exact_infeasible(self):
        g = TaskGraph(tasks=[("A", 10.0)])
        p = MinEnergyProblem(graph=g, deadline=1.0, model=DiscreteModel(modes=(1.0,)))
        with pytest.raises(InfeasibleProblemError):
            solve_independent_discrete_exact(p)

    @given(st.integers(min_value=2, max_value=7),
           st.floats(min_value=1.1, max_value=2.5),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_exact_never_beaten_by_heuristics(self, n, slack, seed):
        g = generators.layered_dag(n, seed=seed)
        p = _problem(g, slack)
        exact = solve_discrete_exact(p)
        heuristic = solve_discrete_best_heuristic(p)
        check_solution(exact)
        check_solution(heuristic)
        assert exact.energy <= heuristic.energy * (1 + 1e-9)
        assert exact.energy >= continuous_lower_bound(p) * (1 - 1e-6)


class TestHeuristics:
    def test_round_up_feasible_and_admissible(self, small_layered_dag):
        p = _problem(small_layered_dag, 1.4)
        s = solve_discrete_round_up(p)
        check_solution(s)
        assert s.lower_bound is not None
        assert s.energy >= s.lower_bound * (1 - 1e-6)

    def test_round_up_exact_when_modes_match_continuous(self):
        # chain of total work 2, deadline 4 -> continuous speed 0.5 which is a mode
        g = generators.chain(2, works=[1.0, 1.0])
        p = MinEnergyProblem(graph=g, deadline=4.0,
                             model=DiscreteModel(modes=(0.5, 1.0)))
        s = solve_discrete_round_up(p)
        assert s.energy == pytest.approx(continuous_lower_bound(p), rel=1e-9)

    def test_greedy_reclaim_improves_on_no_reclaim(self, small_layered_dag):
        from repro.baselines.naive import solve_no_reclaim

        p = _problem(small_layered_dag, 1.6)
        greedy = solve_discrete_greedy_reclaim(p)
        baseline = solve_no_reclaim(p)
        check_solution(greedy)
        assert greedy.energy <= baseline.energy * (1 + 1e-9)

    def test_greedy_reclaim_respects_max_passes(self, small_layered_dag):
        p = _problem(small_layered_dag, 2.0)
        limited = solve_discrete_greedy_reclaim(p, max_passes=1)
        assert limited.metadata["moves_applied"] <= 1

    def test_best_heuristic_reports_both(self, small_layered_dag):
        p = _problem(small_layered_dag, 1.5)
        best = solve_discrete_best_heuristic(p)
        assert "round_up_energy" in best.metadata
        assert "greedy_energy" in best.metadata
        assert best.energy <= min(best.metadata["round_up_energy"],
                                  best.metadata["greedy_energy"]) * (1 + 1e-12)

    def test_heuristics_require_mode_model(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=100.0, model=ContinuousModel())
        with pytest.raises(InvalidModelError):
            solve_discrete_round_up(p)
        with pytest.raises(InvalidModelError):
            solve_discrete_greedy_reclaim(p)


class TestDispatcher:
    def test_dispatch_independent(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 2.0)])
        p = MinEnergyProblem(graph=g, deadline=5.0, model=DiscreteModel(modes=(0.5, 1.0)))
        assert solve_discrete(p).solver == "discrete-independent-exact"

    def test_dispatch_chain(self):
        g = generators.chain(6, seed=5)
        p = _problem(g, 1.5)
        assert solve_discrete(p).solver == "discrete-chain-pareto-dp"

    def test_dispatch_small_general_graph_exact(self):
        g = generators.layered_dag(8, seed=6)
        p = _problem(g, 1.5)
        assert solve_discrete(p).solver == "discrete-branch-and-bound"

    def test_dispatch_large_graph_heuristic(self):
        g = generators.layered_dag(40, seed=7)
        p = _problem(g, 1.5)
        s = solve_discrete(p)
        assert s.solver in ("discrete-round-up", "discrete-greedy-reclaim")

    def test_dispatch_forced_heuristic(self):
        g = generators.layered_dag(8, seed=8)
        p = _problem(g, 1.5)
        s = solve_discrete(p, exact=False)
        assert s.solver in ("discrete-round-up", "discrete-greedy-reclaim")

    def test_dispatch_rejects_wrong_model(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=100.0, model=ContinuousModel())
        with pytest.raises(InvalidModelError):
            solve_discrete(p)


class TestHardnessGadget:
    def test_gadget_structure(self):
        problem, budget = two_partition_gadget([3, 1, 1, 2, 2, 1])
        half = 5
        assert problem.deadline == pytest.approx(1.5 * half)
        assert budget == pytest.approx(5.0 * half)
        assert problem.model.modes == (1.0, 2.0)
        assert problem.graph.n_tasks == 6

    def test_gadget_rejects_bad_input(self):
        with pytest.raises(InvalidGraphError):
            two_partition_gadget([])
        with pytest.raises(InvalidGraphError):
            two_partition_gadget([1, 2])  # odd sum
        with pytest.raises(InvalidGraphError):
            two_partition_gadget([1.5, 0.5])  # type: ignore[list-item]
        with pytest.raises(InvalidGraphError):
            two_partition_gadget([2, -2])

    def test_yes_instances(self):
        assert decide_two_partition_via_energy([1, 1])
        assert decide_two_partition_via_energy([3, 1, 2, 2])
        assert decide_two_partition_via_energy([5, 5, 10])  # {10} vs {5,5}

    def test_no_instances(self):
        assert not decide_two_partition_via_energy([1, 3])
        assert not decide_two_partition_via_energy([1, 1, 4])
        assert not decide_two_partition_via_energy([2, 2, 2, 8])

    @given(st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=9))
    @settings(max_examples=40, deadline=None)
    def test_reduction_agrees_with_subset_sum(self, values):
        total = sum(values)
        if total % 2 == 1:
            values = values + [1]
            total += 1
        target = total // 2
        reachable = {0}
        for v in values:
            reachable |= {r + v for r in reachable if r + v <= target}
        expected = target in reachable
        assert decide_two_partition_via_energy(values) == expected
