"""Chaos and reliability tests (:mod:`repro.reliability` + wiring).

Covers: the failpoint registry (arming, spec grammar, deterministic
firing, env arming), the policy layer (retries, deadlines, circuit
breaking), torn-write semantics against the job store's atomic-replace
contract, the lease-expiry race (a frozen ex-owner can never overwrite
the reclaiming worker), server overload shedding (typed 503 +
``Retry-After``), graceful drain of live event streams, fleet-worker
crash-loop strikes, the CLI reliability flags — and the flagship chaos
parity suite: the same sweep, submitted through Local, Disk and HTTP
transports with faults injected at every instrumented site, produces a
result table bit-identical (``rows_signature``) to the fault-free run.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import (
    DiskTransport,
    HTTPTransport,
    JobStore,
    LocalTransport,
    SolverClient,
    SweepRequest,
)
from repro.api.protocol import SolveRequest
from repro.batch import rows_signature, sweep
from repro.cli import _reliability_kwargs, build_parser
from repro.cli import main as cli_main
from repro.core.models import ContinuousModel
from repro.core.problem import MinEnergyProblem
from repro.fleet.worker import FleetWorker, WorkerCrashLoopError
from repro.graphs import generators
from repro.reliability import failpoints
from repro.reliability.failpoints import FailPlan, FailpointSpecError
from repro.reliability.policy import (
    DEADLINE_HEADER,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    current_deadline,
    deadline_scope,
    is_retryable,
)
from repro.server import SolverHTTPServer
from repro.service.batcher import MicroBatcher
from repro.utils.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFaultError,
    JobStateError,
    OverloadedError,
    ReproError,
    ServerShutdownError,
    TransientTransportError,
)

REQUEST = SweepRequest(graph_classes=("chain",), sizes=(6, 8),
                       slacks=(1.5,), repetitions=1, seed=7, name="chaos")

#: A fast, fully deterministic retry policy for the chaos runs.
FAST_RETRIES = dict(initial=0.01, maximum=0.05, jitter=0.0)

_REFERENCE: list[str] = []


def reference_signature() -> str:
    """The fault-free signature of ``REQUEST``'s sweep (memoised)."""
    if not _REFERENCE:
        table = sweep(graph_classes=("chain",), sizes=(6, 8), slacks=(1.5,),
                      repetitions=1, seed=7)
        _REFERENCE.append(rows_signature(table))
    return _REFERENCE[0]


def _problem(n: int = 10, *, seed: int = 1) -> MinEnergyProblem:
    graph = generators.layered_dag(n, seed=seed)
    return MinEnergyProblem(graph=graph, deadline=1.5 * graph.total_work(),
                            model=ContinuousModel(s_max=1.0))


@pytest.fixture(autouse=True)
def clean_failpoints():
    """No fault plan ever leaks from one test into the next."""
    failpoints.reset()
    yield
    failpoints.reset()


# --------------------------------------------------------------------- #
# the failpoint registry
# --------------------------------------------------------------------- #
class TestFailpoints:
    def test_disarmed_fire_is_a_no_op(self):
        assert not failpoints.active()
        assert failpoints.fire("jobstore.write") is None

    def test_armed_site_raises_exactly_times(self):
        with failpoints.armed("x.y", "raise", times=2) as plan:
            for _ in range(2):
                with pytest.raises(InjectedFaultError):
                    failpoints.fire("x.y")
            assert failpoints.fire("x.y") is None  # budget spent
            assert failpoints.fire("other.site") is None  # different site
        assert plan.fired == 2 and plan.hits == 3
        assert failpoints.fire("x.y") is None  # disarmed on exit

    def test_skip_passes_the_first_hits_through(self):
        with failpoints.armed("x.y", "raise", times=1, skip=2) as plan:
            assert failpoints.fire("x.y") is None
            assert failpoints.fire("x.y") is None
            with pytest.raises(InjectedFaultError):
                failpoints.fire("x.y")
        assert plan.fired == 1 and plan.hits == 3

    def test_when_filter_targets_one_worker(self):
        with failpoints.armed("jobstore.write", "raise", times=5,
                              when={"worker": "wA"}) as plan:
            assert failpoints.fire("jobstore.write", worker="wB") is None
            with pytest.raises(InjectedFaultError):
                failpoints.fire("jobstore.write", worker="wA")
        assert plan.fired == 1

    def test_action_modes_return_their_string(self):
        with failpoints.armed("x.y", "torn"):
            assert failpoints.fire("x.y") == "torn"
        with failpoints.armed("x.y", "garbage"):
            assert failpoints.fire("x.y") == "garbage"

    def test_latency_mode_sleeps(self):
        with failpoints.armed("x.y", "latency", param=0.05):
            start = time.monotonic()
            assert failpoints.fire("x.y") is None
            assert time.monotonic() - start >= 0.04

    def test_flaky_firing_is_a_pure_function_of_the_seed(self):
        def pattern(seed: int) -> list[bool]:
            plan = FailPlan(mode="flaky", param=0.5, seed=seed, times=100)
            return [plan.should_fire() for _ in range(40)]

        assert pattern(42) == pattern(42)
        assert any(pattern(42)) and not all(pattern(42))
        assert pattern(42) != pattern(43)

    def test_spec_grammar_round_trips(self):
        plans = failpoints.arm_spec(
            "http.request=raise*2~1@7; jobstore.write=latency:0.01")
        assert plans["http.request"].times == 2
        assert plans["http.request"].skip == 1
        assert plans["http.request"].seed == 7
        assert plans["jobstore.write"].mode == "latency"
        assert plans["jobstore.write"].param == 0.01
        assert set(failpoints.stats()) == {"http.request", "jobstore.write"}

    @pytest.mark.parametrize("spec", [
        "no-equals-sign",
        "site=",
        "=raise",
        "site=unknown-mode",
        "site=raise*zero",
        "site=latency",          # latency needs a param
        "site=flaky:1.5",        # probability out of range
    ])
    def test_bad_specs_are_typed_errors(self, spec):
        with pytest.raises(FailpointSpecError):
            failpoints.arm_spec(spec)

    def test_env_arming(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAILPOINTS", "a.b=raise*3")
        plans = failpoints.arm_from_env()
        assert plans["a.b"].times == 3
        assert failpoints.active()


# --------------------------------------------------------------------- #
# retry policy / deadline / circuit breaker units
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_retries_transient_failures_until_success(self):
        policy = RetryPolicy(retries=3, initial=0.001, jitter=0.0)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientTransportError("net blip")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3

    def test_non_retryable_errors_propagate_immediately(self):
        policy = RetryPolicy(retries=3, initial=0.001, jitter=0.0)
        attempts = []

        def bad():
            attempts.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(bad)
        assert len(attempts) == 1

    def test_exhausted_retries_raise_the_last_failure(self):
        policy = RetryPolicy(retries=2, initial=0.001, jitter=0.0)
        attempts = []

        def down():
            attempts.append(1)
            raise TransientTransportError("still down")

        with pytest.raises(TransientTransportError, match="still down"):
            policy.call(down)
        assert len(attempts) == 3

    def test_non_idempotent_calls_never_replay_a_maybe_executed_failure(self):
        policy = RetryPolicy(retries=3, initial=0.001, jitter=0.0)
        attempts = []

        def ambiguous():
            attempts.append(1)
            raise TransientTransportError("reset mid-exchange")

        with pytest.raises(TransientTransportError):
            policy.call(ambiguous, idempotent=False)
        assert len(attempts) == 1  # might have landed: no blind re-send

    def test_non_idempotent_calls_retry_provably_unexecuted_failures(self):
        policy = RetryPolicy(retries=3, initial=0.001, jitter=0.0)
        attempts = []

        def shed():
            attempts.append(1)
            if len(attempts) < 2:
                raise OverloadedError("shed", retry_after=0.001)
            return "ok"

        assert policy.call(shed, idempotent=False) == "ok"
        assert len(attempts) == 2

    def test_retry_after_is_a_sleep_floor(self):
        policy = RetryPolicy(retries=1, initial=0.001, jitter=0.0)
        attempts = []

        def shed():
            attempts.append(1)
            if len(attempts) < 2:
                raise OverloadedError("shed", retry_after=0.05)
            return "ok"

        start = time.monotonic()
        assert policy.call(shed) == "ok"
        assert time.monotonic() - start >= 0.04

    def test_sleep_budget_caps_the_stall(self):
        policy = RetryPolicy(retries=5, initial=5.0, jitter=0.0, budget=0.01)
        attempts = []

        def down():
            attempts.append(1)
            raise TransientTransportError("down")

        start = time.monotonic()
        with pytest.raises(TransientTransportError):
            policy.call(down)
        assert len(attempts) == 1  # the first backoff would blow the budget
        assert time.monotonic() - start < 1.0

    def test_deadline_caps_the_backoff(self):
        policy = RetryPolicy(retries=5, initial=5.0, jitter=0.0)
        start = time.monotonic()
        with pytest.raises(TransientTransportError):
            policy.call(lambda: (_ for _ in ()).throw(
                TransientTransportError("down")),
                deadline=Deadline.after(0.05))
        assert time.monotonic() - start < 1.0

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "7")
        assert RetryPolicy.from_env().retries == 7
        monkeypatch.setenv("REPRO_RETRIES", "lots")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            RetryPolicy.from_env()

    def test_is_retryable_classification(self):
        assert is_retryable(TransientTransportError("x"))
        assert not is_retryable(ValueError("x"))
        assert not is_retryable(CircuitOpenError("open"))  # never spin on it
        assert not is_retryable(TransientTransportError("x"),
                                idempotent=False)
        assert is_retryable(OverloadedError("shed"), idempotent=False)
        assert is_retryable(InjectedFaultError("chaos"), idempotent=False)


class TestDeadline:
    def test_budget_and_expiry(self):
        deadline = Deadline.after(30.0)
        assert 29.0 < deadline.remaining() <= 30.0
        assert not deadline.expired
        deadline.require("solve")  # no raise
        with pytest.raises(ValueError):
            Deadline.after(0.0)

    def test_header_round_trip(self):
        deadline = Deadline.after(12.0)
        again = Deadline.from_header(deadline.to_header())
        assert again is not None
        assert 11.0 < again.remaining() <= 12.0

    def test_malformed_header_is_ignored(self):
        assert Deadline.from_header("soon") is None
        assert Deadline.from_header("") is None

    def test_non_positive_header_arrives_expired(self):
        deadline = Deadline.from_header("-1.5")
        assert deadline is not None and deadline.expired
        with pytest.raises(DeadlineExceededError):
            deadline.require("solve")

    def test_scope_carries_the_ambient_deadline(self):
        assert current_deadline() is None
        deadline = Deadline.after(5.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_and_fails_fast(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=60.0)
        breaker.allow()
        breaker.record_failure()
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_half_open_admits_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.state == "half-open"
        breaker.allow()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # a second caller is still refused
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()

    def test_probe_failure_reopens_the_circuit(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_seconds=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        breaker.allow()
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two *consecutive*

    def test_open_breaker_short_circuits_the_transport(self):
        # nothing listens on port 1: every call is a fast connection
        # failure, and the third is refused without any I/O at all
        transport = HTTPTransport(
            "http://127.0.0.1:1", retry_policy=RetryPolicy(retries=0),
            breaker=CircuitBreaker(failure_threshold=2, reset_seconds=60.0))
        for _ in range(2):
            with pytest.raises(TransientTransportError):
                transport.status("nope")
        with pytest.raises(CircuitOpenError):
            transport.status("nope")


# --------------------------------------------------------------------- #
# micro-batcher reliability
# --------------------------------------------------------------------- #
class TestBatcherReliability:
    def test_expired_deadline_is_resolved_not_solved(self):
        with MicroBatcher(window_ms=0) as batcher:
            deadline = Deadline.after(0.001)
            time.sleep(0.01)
            future = batcher.submit(_problem(), deadline=deadline)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5)

    def test_tick_fault_requeues_the_batch_with_identical_results(self):
        problem = _problem()
        with MicroBatcher(window_ms=0) as batcher:
            baseline = batcher.solve(problem, timeout=30)
            with failpoints.armed("batcher.tick") as plan:
                faulted = batcher.solve(problem, timeout=30)
            assert plan.fired == 1
        assert faulted.ok and baseline.ok
        assert faulted.energy == baseline.energy


# --------------------------------------------------------------------- #
# torn writes and the lease-expiry race
# --------------------------------------------------------------------- #
class TestJobStoreChaos:
    def test_torn_write_never_corrupts_the_visible_record(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(REQUEST, job_id="torn-job")
        with failpoints.armed("jobstore.write", "torn") as plan:
            with pytest.raises(InjectedFaultError):
                store.update("torn-job", done=1)
        assert plan.fired == 1
        # the atomic-replace contract: the update died mid-flush, so the
        # visible record is the intact pre-write version, not half a file
        record = store.load("torn-job")
        assert record["done"] == 0
        _records, skipped = store.scan()
        assert skipped == []

    def test_frozen_ex_owner_cannot_overwrite_the_reclaiming_worker(
            self, tmp_path):
        store = JobStore(tmp_path)
        store.create(REQUEST, job_id="race")
        store.claim("race", "wA", 0.05)
        # freeze the ex-owner mid-write: every write attempted while the
        # record is still stamped wA dies before touching disk
        with failpoints.armed("jobstore.write", "raise", times=5,
                              when={"worker": "wA"}):
            with pytest.raises(InjectedFaultError):
                store.renew_lease("race", "wA", 0.05)
            time.sleep(0.08)  # the lease expires while wA is stuck
            record = store.claim("race", "wB", 30.0)  # takeover
            assert record["worker_id"] == "wB"
            assert record["reclaims"] == 1
        # the thawed ex-owner's conditional writes are refused, not applied
        with pytest.raises(JobStateError, match="lease"):
            store.renew_lease("race", "wA", 0.05)
        with pytest.raises(JobStateError, match="lease"):
            store.transition("race", "done", expected_worker="wA")
        assert store.load("race")["worker_id"] == "wB"


# --------------------------------------------------------------------- #
# chaos parity: identical results with and without faults
# --------------------------------------------------------------------- #
class TestChaosParity:
    def test_local_solve_is_identical_under_a_batcher_fault(self):
        problem = _problem()
        with SolverClient(LocalTransport(workers=1,
                                         use_threads=True)) as client:
            baseline = client.solve(problem)
            with failpoints.armed("batcher.tick") as plan:
                faulted = client.solve(problem)
            assert plan.fired == 1
        assert baseline.ok and faulted.ok
        assert faulted.energy == baseline.energy

    def test_disk_sweep_is_identical_under_store_and_heartbeat_faults(
            self, tmp_path):
        transport = DiskTransport(tmp_path / "jobs", use_threads=True,
                                  heartbeat_seconds=0.05, lease_seconds=1.0)
        client = SolverClient(
            transport, retry_policy=RetryPolicy(retries=3, **FAST_RETRIES))
        with client:
            with failpoints.armed("jobstore.write", "torn",
                                  times=1) as p_store, \
                    failpoints.armed("worker.heartbeat",
                                     times=1) as p_beat:
                record = client.submit(REQUEST)
                table = client.results(record.job_id, timeout=120)
            assert p_store.fired >= 1
            assert p_beat.fired >= 1
        assert rows_signature(table) == reference_signature()
        assert client.status(record.job_id).status == "done"

    def test_http_sweep_is_identical_under_faults_at_every_site(
            self, tmp_path):
        transport = DiskTransport(tmp_path / "jobs", use_threads=True)
        with SolverHTTPServer(transport).start() as server:
            http = HTTPTransport(
                server.url,
                retry_policy=RetryPolicy(retries=3, **FAST_RETRIES))
            with SolverClient(http) as client:
                with failpoints.armed("http.request", times=2) as p_req, \
                        failpoints.armed("http.stream", times=1) as p_stream, \
                        failpoints.armed("jobstore.write",
                                         times=2) as p_store, \
                        failpoints.armed("worker.heartbeat",
                                         times=1) as p_beat:
                    record = client.submit(REQUEST)
                    events = list(client.events(record.job_id,
                                                poll_interval=0.02))
                    table = client.results(record.job_id, timeout=120)
                assert p_req.fired >= 1
                assert p_stream.fired >= 1
                assert p_store.fired >= 1
                assert p_beat.fired >= 1
                # the reconnected stream is still well-formed: contiguous
                # sequence numbers, no duplicates, terminal last
                assert [e.seq for e in events] == list(range(len(events)))
                assert events[-1].terminal
        assert rows_signature(table) == reference_signature()

    def test_poll_loops_tolerate_transient_faults(self, tmp_path):
        transport = DiskTransport(tmp_path / "jobs", use_threads=True)
        with SolverHTTPServer(transport).start() as server:
            # retries=0 so nothing below the base class absorbs the faults
            http = HTTPTransport(server.url,
                                 retry_policy=RetryPolicy(retries=0))
            with SolverClient(http) as client:
                record = client.submit(REQUEST)
                client.results(record.job_id, timeout=120)
                with failpoints.armed("http.request", times=3) as plan:
                    final = http.wait(record.job_id, poll_interval=0.01)
                assert plan.fired == 3
                assert final.terminal
                # more consecutive faults than the tolerance is fatal
                with failpoints.armed("http.request", times=20):
                    with pytest.raises(TransientTransportError):
                        http.wait(record.job_id, poll_interval=0.01)

    def test_garbled_response_body_is_retried(self, tmp_path):
        transport = DiskTransport(tmp_path / "jobs", use_threads=True)
        with SolverHTTPServer(transport).start() as server:
            http = HTTPTransport(
                server.url,
                retry_policy=RetryPolicy(retries=2, **FAST_RETRIES))
            with SolverClient(http) as client:
                record = client.submit(REQUEST)
                with failpoints.armed("http.request", "garbage") as plan:
                    status = client.status(record.job_id)
                assert plan.fired == 1
                assert status.job_id == record.job_id
                client.results(record.job_id, timeout=120)


# --------------------------------------------------------------------- #
# overload control and graceful drain
# --------------------------------------------------------------------- #
def _raw_solve(url: str, *, headers: dict | None = None):
    body = json.dumps(SolveRequest.from_problem(_problem()).to_wire())
    request = urllib.request.Request(
        f"{url}/v1/solve", data=body.encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})})
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def _healthz(url: str) -> dict:
    with urllib.request.urlopen(f"{url}/v1/healthz", timeout=10) as response:
        return json.loads(response.read())


class TestOverloadControl:
    def test_excess_load_is_shed_with_a_typed_503(self):
        transport = LocalTransport(workers=1, use_threads=True)
        with SolverHTTPServer(transport, max_inflight=1, max_queue=0,
                              queue_timeout=0.2).start() as server:
            # an idle server admits: max_queue=0 only forbids *waiting*
            assert _raw_solve(server.url)["ok"]
            # one slow request holds the single slot...
            with failpoints.armed("batcher.tick", "latency", param=0.6):
                slow = threading.Thread(target=_raw_solve,
                                        args=(server.url,), daemon=True)
                slow.start()
                time.sleep(0.15)  # let it be admitted
                # ...so the next is shed instantly with the typed body
                with pytest.raises(urllib.error.HTTPError) as err:
                    _raw_solve(server.url)
                assert err.value.code == 503
                assert float(err.value.headers["Retry-After"]) > 0
                payload = json.loads(err.value.read())
                assert payload["error"]["type"] == "OverloadedError"
                assert payload["error"]["retry_after"] > 0
                slow.join(timeout=30)
            health = _healthz(server.url)
            assert health["status"] == "ok"
            assert health["admission"]["shed"] >= 1
            assert health["admission"]["admitted"] >= 2

    def test_a_retrying_client_rides_out_the_overload(self):
        transport = LocalTransport(workers=1, use_threads=True)
        with SolverHTTPServer(transport, max_inflight=1, max_queue=0,
                              queue_timeout=0.2).start() as server:
            with failpoints.armed("batcher.tick", "latency", param=0.4):
                slow = threading.Thread(target=_raw_solve,
                                        args=(server.url,), daemon=True)
                slow.start()
                time.sleep(0.1)
                http = HTTPTransport(
                    server.url,
                    retry_policy=RetryPolicy(retries=4, initial=0.05,
                                             maximum=0.5, jitter=0.0))
                with SolverClient(http) as client:
                    response = client.solve(_problem())
                assert response.ok
                slow.join(timeout=30)

    def test_expired_deadline_header_is_a_504(self):
        transport = LocalTransport(workers=1, use_threads=True)
        with SolverHTTPServer(transport).start() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _raw_solve(server.url, headers={DEADLINE_HEADER: "0"})
            assert err.value.code == 504
            payload = json.loads(err.value.read())
            assert payload["error"]["type"] == "DeadlineExceededError"

    def test_malformed_deadline_header_is_ignored(self):
        transport = LocalTransport(workers=1, use_threads=True)
        with SolverHTTPServer(transport).start() as server:
            assert _raw_solve(server.url,
                              headers={DEADLINE_HEADER: "soon"})["ok"]


class TestGracefulDrain:
    def test_drain_terminates_event_streams_with_a_typed_error(
            self, tmp_path):
        big = SweepRequest(graph_classes=("chain", "tree", "layered"),
                           sizes=(16, 24), slacks=(1.5,), repetitions=2,
                           seed=3, name="drain-me")
        transport = DiskTransport(tmp_path / "jobs", use_threads=True)
        with SolverHTTPServer(transport).start() as server:
            http = HTTPTransport(server.url,
                                 retry_policy=RetryPolicy(retries=0))
            with SolverClient(http) as client:
                record = client.submit(big)
                events = client.events(record.job_id, poll_interval=0.02)
                next(events)  # the stream is live
                server.draining.set()
                # the in-band shutdown line becomes the typed client error
                with pytest.raises(ServerShutdownError):
                    for _event in events:
                        pass
                # a draining server refuses new work with the same type
                with pytest.raises(ServerShutdownError):
                    client.submit(REQUEST)
                assert _healthz(server.url)["status"] == "draining"
            # the in-flight job still reaches a terminal record
            assert transport.drain(timeout=120) == 0
            assert transport.store.load(record.job_id)["status"] == "done"


# --------------------------------------------------------------------- #
# fleet-worker crash-loop strikes
# --------------------------------------------------------------------- #
class TestWorkerStrikes:
    def test_worker_strikes_out_after_consecutive_failures(
            self, tmp_path, monkeypatch):
        worker = FleetWorker(tmp_path / "jobs", use_threads=True,
                             max_strikes=3, poll_interval=0.01,
                             rng=random.Random(0))
        calls = []

        def boom():
            calls.append(1)
            raise TransientTransportError("store down")

        monkeypatch.setattr(worker, "run_one", boom)
        with pytest.raises(WorkerCrashLoopError, match="struck out"):
            worker.run()
        assert len(calls) == 3
        summary = worker.summary()
        assert summary["strikes"] == 3
        assert "store down" in summary["last_error"]

    def test_a_successful_poll_clears_the_strike_count(
            self, tmp_path, monkeypatch):
        worker = FleetWorker(tmp_path / "jobs", use_threads=True,
                             max_strikes=2, drain=0.02, poll_interval=0.01,
                             rng=random.Random(0))
        outcomes = iter([TransientTransportError("blip"), None, None, None])

        def sometimes():
            outcome = next(outcomes, None)
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

        monkeypatch.setattr(worker, "run_one", sometimes)
        summary = worker.run()  # drains idle instead of striking out
        assert summary["strikes"] == 0
        assert "blip" in summary["last_error"]

    def test_strike_backoff_is_not_a_tight_loop(self, tmp_path, monkeypatch):
        worker = FleetWorker(tmp_path / "jobs", use_threads=True,
                             max_strikes=3, rng=random.Random(7))

        def boom():
            raise TransientTransportError("down")

        monkeypatch.setattr(worker, "run_one", boom)
        start = time.monotonic()
        with pytest.raises(WorkerCrashLoopError):
            worker.run()
        # two inter-strike sleeps happened (jittered, but seeded)
        assert time.monotonic() - start >= 0.05

    def test_max_strikes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max-strikes"):
            FleetWorker(tmp_path / "jobs", max_strikes=0)

    def test_cli_work_exits_non_zero_on_strike_out(
            self, tmp_path, monkeypatch, capsys):
        def boom(self):
            raise TransientTransportError("store down")

        monkeypatch.setattr(FleetWorker, "run_one", boom)
        code = cli_main(["work", "--jobs-dir", str(tmp_path / "jobs"),
                         "--max-strikes", "2"])
        assert code == 3
        captured = capsys.readouterr()
        assert "struck out" in captured.err
        assert json.loads(captured.out.splitlines()[-1])["strikes"] == 2


# --------------------------------------------------------------------- #
# CLI reliability flags
# --------------------------------------------------------------------- #
class TestCLIFlags:
    def test_transport_verbs_take_retries_and_deadline(self):
        args = build_parser().parse_args(
            ["status", "j1", "--retries", "5", "--deadline", "3.5"])
        assert args.retries == 5
        assert args.request_deadline == 3.5
        policy, deadline = _reliability_kwargs(args)
        assert policy.retries == 5 and deadline == 3.5

    def test_solve_keeps_deadline_for_the_problem(self):
        # --deadline is the problem's D; the budget is --request-deadline
        args = build_parser().parse_args(
            ["solve", "g.json", "--deadline", "42",
             "--request-deadline", "2.5", "--retries", "1"])
        assert args.deadline == 42.0
        assert args.request_deadline == 2.5

    def test_env_defaults_feed_the_policies(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "7")
        monkeypatch.setenv("REPRO_DEADLINE", "9.5")
        args = build_parser().parse_args(["status", "j1"])
        policy, deadline = _reliability_kwargs(args)
        assert policy.retries == 7 and deadline == 9.5

    def test_flags_override_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "7")
        monkeypatch.setenv("REPRO_DEADLINE", "9.5")
        args = build_parser().parse_args(
            ["status", "j1", "--retries", "0", "--deadline", "1.5"])
        policy, deadline = _reliability_kwargs(args)
        assert policy.retries == 0 and deadline == 1.5

    def test_garbage_env_values_are_typed_errors(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "soon")
        args = build_parser().parse_args(["status", "j1"])
        with pytest.raises(ReproError, match="REPRO_DEADLINE"):
            _reliability_kwargs(args)
        monkeypatch.delenv("REPRO_DEADLINE")
        monkeypatch.setenv("REPRO_RETRIES", "lots")
        with pytest.raises(ReproError, match="REPRO_RETRIES"):
            _reliability_kwargs(args)

    def test_serve_takes_admission_flags(self):
        args = build_parser().parse_args(
            ["serve", "--max-inflight", "4", "--max-queue", "16"])
        assert args.max_inflight == 4 and args.max_queue == 16
