"""Tests for the mapping substrate (execution graphs and mapping producers)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import generators
from repro.graphs.analysis import longest_path_length, topological_order
from repro.graphs.taskgraph import TaskGraph
from repro.mapping import (
    ExecutionGraph,
    bottom_levels,
    list_schedule,
    load_balance_mapping,
    one_task_per_processor,
    round_robin_mapping,
    single_processor_mapping,
    top_levels,
)
from repro.utils.errors import InvalidGraphError


class TestExecutionGraph:
    def test_trivial_mapping_equals_task_graph(self):
        g = generators.layered_dag(10, seed=0)
        eg = ExecutionGraph.trivial(g)
        assert eg.n_processors == 10
        assert set(eg.combined_graph().edges()) == set(g.edges())
        assert eg.processor_edges() == []

    def test_single_processor_adds_chain_edges(self):
        g = generators.fork(3, source_work=1.0, works=[1.0, 1.0, 1.0])
        eg = ExecutionGraph(task_graph=g, processor_lists={0: ["T0", "T1", "T2", "T3"]})
        combined = eg.combined_graph()
        assert combined.has_edge("T1", "T2")
        assert combined.has_edge("T2", "T3")
        assert len(eg.processor_edges()) == 2  # T1->T2, T2->T3 (T0->T1 already exists)

    def test_processor_of_and_work(self):
        g = generators.chain(4, works=[1.0, 2.0, 3.0, 4.0])
        eg = ExecutionGraph(task_graph=g,
                            processor_lists={0: ["T1", "T3"], 1: ["T2", "T4"]})
        assert eg.processor_of("T3") == 0
        assert eg.processor_work() == {0: 4.0, 1: 6.0}

    def test_unknown_task_in_list_rejected(self):
        g = generators.chain(2, works=[1.0, 1.0])
        with pytest.raises(InvalidGraphError):
            ExecutionGraph(task_graph=g, processor_lists={0: ["T1", "ghost"]})

    def test_duplicate_task_rejected(self):
        g = generators.chain(2, works=[1.0, 1.0])
        with pytest.raises(InvalidGraphError):
            ExecutionGraph(task_graph=g, processor_lists={0: ["T1"], 1: ["T1", "T2"]})

    def test_unmapped_task_rejected(self):
        g = generators.chain(2, works=[1.0, 1.0])
        with pytest.raises(InvalidGraphError):
            ExecutionGraph(task_graph=g, processor_lists={0: ["T1"]})

    def test_order_incompatible_with_precedence_rejected(self):
        g = generators.chain(2, works=[1.0, 1.0])
        with pytest.raises(InvalidGraphError):
            ExecutionGraph(task_graph=g, processor_lists={0: ["T2", "T1"]})

    def test_from_processor_assignment(self):
        g = generators.layered_dag(12, seed=1)
        assignment = {t: i % 3 for i, t in enumerate(topological_order(g))}
        eg = ExecutionGraph.from_processor_assignment(g, assignment)
        assert eg.n_processors <= 3
        assert eg.combined_graph().is_dag()

    def test_from_processor_assignment_missing_task(self):
        g = generators.chain(3, works=[1.0] * 3)
        with pytest.raises(InvalidGraphError):
            ExecutionGraph.from_processor_assignment(g, {"T1": 0})


class TestLevels:
    def test_bottom_levels_chain(self):
        g = generators.chain(3, works=[1.0, 2.0, 3.0])
        bl = bottom_levels(g)
        assert bl["T1"] == pytest.approx(6.0)
        assert bl["T3"] == pytest.approx(3.0)

    def test_top_levels_chain(self):
        g = generators.chain(3, works=[1.0, 2.0, 3.0])
        tl = top_levels(g)
        assert tl["T1"] == 0.0
        assert tl["T3"] == pytest.approx(3.0)

    def test_bottom_level_equals_critical_path_at_source(self):
        g = generators.layered_dag(20, seed=2)
        bl = bottom_levels(g)
        assert max(bl.values()) == pytest.approx(longest_path_length(g))


class TestMappingProducers:
    def test_list_schedule_partitions_tasks(self):
        g = generators.layered_dag(30, seed=3)
        eg = list_schedule(g, 4)
        mapped = [t for tasks in eg.processor_lists.values() for t in tasks]
        assert sorted(mapped) == sorted(g.task_names())
        assert eg.n_processors <= 4
        assert eg.combined_graph().is_dag()

    def test_list_schedule_single_processor_serialises(self):
        g = generators.layered_dag(10, seed=4)
        eg = list_schedule(g, 1)
        combined = eg.combined_graph()
        # a single processor forces a total order: n-1 consecutive edges exist
        order = eg.processor_lists[0]
        assert len(order) == g.n_tasks
        for a, b in zip(order, order[1:]):
            assert combined.has_edge(a, b)

    def test_list_schedule_makespan_not_worse_than_single(self):
        g = generators.layered_dag(24, seed=5)
        multi = list_schedule(g, 4).combined_graph()
        single = single_processor_mapping(g).combined_graph()
        assert longest_path_length(multi) <= longest_path_length(single) + 1e-9

    def test_list_schedule_invalid_inputs(self):
        g = generators.chain(3, works=[1.0] * 3)
        with pytest.raises(InvalidGraphError):
            list_schedule(g, 0)
        with pytest.raises(InvalidGraphError):
            list_schedule(g, 2, reference_speed=0.0)

    def test_round_robin_mapping(self):
        g = generators.layered_dag(9, seed=6)
        eg = round_robin_mapping(g, 3)
        sizes = sorted(len(v) for v in eg.processor_lists.values())
        assert sum(sizes) == 9
        assert max(sizes) - min(sizes) <= 1
        assert eg.combined_graph().is_dag()

    def test_load_balance_mapping_balances_work(self):
        g = generators.layered_dag(40, seed=7)
        eg = load_balance_mapping(g, 4)
        loads = list(eg.processor_work().values())
        assert max(loads) <= g.total_work()  # sanity
        # greedy balancing keeps the spread below the largest single task + mean
        mean = g.total_work() / 4
        largest = max(g.work(t) for t in g.task_names())
        assert max(loads) - min(loads) <= largest + mean

    def test_single_processor_mapping(self):
        g = generators.layered_dag(8, seed=8)
        eg = single_processor_mapping(g)
        assert eg.n_processors == 1
        assert longest_path_length(eg.combined_graph()) == pytest.approx(g.total_work())

    def test_one_task_per_processor(self):
        g = generators.layered_dag(8, seed=9)
        eg = one_task_per_processor(g)
        assert eg.n_processors == 8

    def test_invalid_processor_counts(self):
        g = generators.chain(3, works=[1.0] * 3)
        for fn in (round_robin_mapping, load_balance_mapping):
            with pytest.raises(InvalidGraphError):
                fn(g, 0)

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_all_producers_yield_valid_execution_graphs(self, n, p, seed):
        g = generators.layered_dag(n, seed=seed)
        for producer in (lambda: list_schedule(g, p),
                         lambda: round_robin_mapping(g, p),
                         lambda: load_balance_mapping(g, p),
                         lambda: single_processor_mapping(g)):
            eg = producer()
            combined = eg.combined_graph()
            assert combined.is_dag()
            assert set(combined.task_names()) == set(g.task_names())
            # original precedence edges are preserved
            for u, v in g.edges():
                assert combined.has_edge(u, v)
