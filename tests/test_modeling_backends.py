"""Cross-backend parity suite for the declarative modeling layer.

Every *available* registered backend must agree on the optimum of the same
declared model, across the graph families of the paper — and unavailable
optional backends must skip with their probe's reason, never fail.  The
suite also covers the modeling layer itself: materialise-once caching,
freeze-after-materialise, fingerprints, the typed backend errors, and the
no-densification guarantee of the large-n solve path.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import sparse as sp

from repro.core.models import ContinuousModel, DiscreteModel, VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.power import PowerLaw
from repro.core.validation import check_solution
from repro.continuous.sparse import solve_general_convex_sparse
from repro.discrete.relaxation import solve_discrete_lp_relaxation
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.modeling import (
    BACKENDS,
    BackendUnavailableError,
    ConvexModel,
    LinearModel,
    UnknownBackendError,
    declare_precedence,
)
from repro.utils.errors import (
    InvalidOptionError,
    SolverError,
    UnknownOptionError,
)
from repro.vdd.lp import solve_vdd_lp

MODES = (0.4, 0.7, 1.0)

GRAPHS = {
    "chain": lambda: generators.chain(12, seed=5),
    "tree": lambda: generators.random_tree(16, seed=5),
    "sp": lambda: generators.random_series_parallel(18, seed=5),
    "diamond": lambda: generators.diamond(4, 4, seed=5),
    "erdos": lambda: generators.erdos_dag(20, seed=5, edge_probability=0.25),
}


def _problem(graph, model, slack=1.6, alpha=3.0):
    deadline = slack * longest_path_length(
        graph, weight=lambda n: graph.work(n) / model.max_speed)
    return MinEnergyProblem(graph=graph, deadline=deadline, model=model,
                            power=PowerLaw(alpha=alpha))


def _require_available(backend: str) -> None:
    """Skip (never fail) when an optional backend is not usable here."""
    reason = BACKENDS.availability(backend)
    if reason is not None:
        pytest.skip(f"backend {backend!r} unavailable: {reason}")


# --------------------------------------------------------------------------- #
# parity: every available backend x every graph family
# --------------------------------------------------------------------------- #
class TestLPBackendParity:
    @pytest.mark.parametrize("backend", BACKENDS.names())
    @pytest.mark.parametrize("family", sorted(GRAPHS))
    def test_vdd_lp_objective_agreement(self, backend, family):
        entry = BACKENDS.resolve("highs")  # reference is always available
        assert entry is not None
        if "lp" not in BACKENDS._backends[backend].kinds:
            pytest.skip(f"{backend!r} does not consume LP models")
        _require_available(backend)
        problem = _problem(GRAPHS[family](), VddHoppingModel(modes=MODES))
        reference = solve_vdd_lp(problem, backend="highs")
        solution = solve_vdd_lp(problem, backend=backend)
        check_solution(solution)  # feasibility of the returned point
        assert solution.energy == pytest.approx(reference.energy, rel=1e-5)
        assert solution.metadata["backend"] == backend

    @pytest.mark.parametrize("backend", BACKENDS.names())
    @pytest.mark.parametrize("family", sorted(GRAPHS))
    def test_convex_objective_agreement(self, backend, family):
        if "convex" not in BACKENDS._backends[backend].kinds:
            pytest.skip(f"{backend!r} does not consume convex models")
        _require_available(backend)
        problem = _problem(GRAPHS[family](), ContinuousModel(s_max=1.0))
        reference = solve_general_convex_sparse(problem)
        solution = solve_general_convex_sparse(problem, backend=backend)
        check_solution(solution)
        assert solution.energy == pytest.approx(reference.energy, rel=1e-4)
        assert solution.metadata["backend"] == backend

    @pytest.mark.parametrize("backend", BACKENDS.names())
    def test_discrete_relaxation_bound_and_feasibility(self, backend):
        if "lp" not in BACKENDS._backends[backend].kinds:
            pytest.skip(f"{backend!r} does not consume LP models")
        _require_available(backend)
        problem = _problem(GRAPHS["sp"](), DiscreteModel(modes=MODES))
        solution = solve_discrete_lp_relaxation(problem, backend=backend)
        check_solution(solution)
        assert solution.lower_bound is not None
        assert solution.lower_bound <= solution.energy + 1e-9
        assert solution.metadata["backend"] == backend


# --------------------------------------------------------------------------- #
# registry semantics
# --------------------------------------------------------------------------- #
class TestBackendRegistry:
    def test_at_least_four_registered_one_optional(self):
        described = BACKENDS.describe()
        assert len(described) >= 4
        assert any(e["optional"] for e in described)
        # the probe-gated entries always appear, available or not
        names = {e["name"] for e in described}
        assert {"highs", "simplex", "mehrotra-ipm", "cvxpy"} <= names

    def test_unknown_backend_lists_the_available_set(self):
        with pytest.raises(UnknownBackendError, match="highs"):
            BACKENDS.resolve("cplex")
        # the typed error doubles as both historical contracts
        assert issubclass(UnknownBackendError, SolverError)
        assert issubclass(UnknownBackendError, InvalidOptionError)

    def test_kind_mismatch_names_the_capable_set(self):
        with pytest.raises(UnknownBackendError, match="mehrotra-ipm"):
            BACKENDS.resolve("simplex", kind="convex")

    def test_unavailable_optional_backend_raises_with_reason(self):
        reason = BACKENDS.availability("cvxpy")
        if reason is None:
            pytest.skip("cvxpy is installed here; nothing to prove")
        with pytest.raises(BackendUnavailableError, match="cvxpy"):
            BACKENDS.resolve("cvxpy")

    def test_undeclared_option_is_rejected(self):
        problem = _problem(GRAPHS["chain"](), VddHoppingModel(modes=MODES))
        from repro.vdd.lp import declare_vdd_lp

        model = declare_vdd_lp(problem)
        with pytest.raises(UnknownOptionError, match="simplex"):
            BACKENDS.solve(model, backend="simplex", options={"bogus": 1})

    def test_solve_metadata_records_provenance(self):
        problem = _problem(GRAPHS["chain"](), VddHoppingModel(modes=MODES))
        solution = solve_vdd_lp(problem)
        for key in ("backend", "build_seconds", "solve_seconds",
                    "model_fingerprint"):
            assert key in solution.metadata
        assert solution.metadata["backend"] == "highs"
        assert solution.metadata["solve_seconds"] >= 0.0


# --------------------------------------------------------------------------- #
# the declarative layer itself
# --------------------------------------------------------------------------- #
class TestDeclarativeModels:
    def _tiny_lp(self):
        model = LinearModel(name="tiny")
        x = model.add_variables("x", 2, lower=0.0)
        model.add_objective(x, [1.0, 2.0])
        model.add_constraints(
            "sum", sense="eq", rhs=[1.0],
            terms=[(x, np.array([0, 0]), np.array([0, 1]), 1.0)])
        return model

    def test_materialize_is_cached_and_freezes_the_model(self):
        model = self._tiny_lp()
        first = model.materialize()
        assert model.materialize() is first  # declared once, built once
        with pytest.raises(SolverError, match="frozen"):
            model.add_variables("y", 1)
        with pytest.raises(SolverError, match="frozen"):
            model.add_constraints("late", sense="ub", rhs=[0.0], terms=[])

    def test_fingerprint_is_content_addressed(self):
        a = self._tiny_lp().materialize()
        b = self._tiny_lp().materialize()
        assert a.fingerprint == b.fingerprint
        different = LinearModel(name="tiny")
        x = different.add_variables("x", 2, lower=0.0)
        different.add_objective(x, [1.0, 3.0])  # objective differs
        different.add_constraints(
            "sum", sense="eq", rhs=[1.0],
            terms=[(x, np.array([0, 0]), np.array([0, 1]), 1.0)])
        assert different.materialize().fingerprint != a.fingerprint

    def test_build_seconds_recorded(self):
        mat = self._tiny_lp().materialize()
        assert mat.build_seconds >= 0.0

    def test_precedence_polytope_rows(self):
        # 3-task chain, scalar durations: rows must be edges then starts
        model = ConvexModel(name="chain")
        d = model.add_variables("d", 3, lower=0.1)
        t = model.add_variables("t", 3, lower=None, upper=1.0)
        declare_precedence(
            model, completion=t, duration_block=d,
            duration_cols=np.arange(3).reshape(3, 1),
            edge_src=np.array([0, 1]), edge_dst=np.array([1, 2]))
        mat = model.materialize()
        dense = mat.g_matrix.toarray()
        # edge (0, 1): t_0 - t_1 + d_1 <= 0
        np.testing.assert_array_equal(dense[0], [0, 1, 0, 1, -1, 0])
        # edge (1, 2): t_1 - t_2 + d_2 <= 0
        np.testing.assert_array_equal(dense[1], [0, 0, 1, 0, 1, -1])
        # start rows: d_i - t_i <= 0
        np.testing.assert_array_equal(dense[2], [1, 0, 0, -1, 0, 0])
        # then folded bounds: t <= 1, then -d <= -0.1
        np.testing.assert_array_equal(dense[5], [0, 0, 0, 1, 0, 0])
        np.testing.assert_array_equal(dense[8], [-1, 0, 0, 0, 0, 0])
        assert mat.h[5] == 1.0 and mat.h[8] == pytest.approx(-0.1)

    def test_convex_model_rejects_equalities(self):
        model = ConvexModel(name="bad")
        x = model.add_variables("x", 1, lower=0.0)
        model.add_constraints("eq", sense="eq", rhs=[1.0],
                              terms=[(x, np.array([0]), np.array([0]), 1.0)])
        with pytest.raises(SolverError, match="equality"):
            model.materialize()

    def test_power_objective_derivatives_match_finite_differences(self):
        problem = _problem(GRAPHS["chain"](), ContinuousModel(s_max=1.0))
        idx = problem.graph.index()
        works = idx.works / np.mean(idx.works)
        from repro.continuous.sparse import declare_continuous_program

        model = declare_continuous_program(
            idx.n_tasks, idx.edge_src, idx.edge_dst,
            np.full(idx.n_tasks, 0.05), works=works, alpha=3.0)
        obj = model.materialize().objective
        rng = np.random.default_rng(7)
        x = np.concatenate([rng.uniform(0.2, 0.8, idx.n_tasks),
                            rng.uniform(0.0, 1.0, idx.n_tasks)])
        grad = obj.gradient(x)
        eps = 1e-6
        for j in (0, idx.n_tasks // 2, idx.n_tasks - 1):
            bump = x.copy()
            bump[j] += eps
            numeric = (obj.value(bump) - obj.value(x)) / eps
            assert grad[j] == pytest.approx(numeric, rel=1e-4)
        # t-block has zero gradient and Hessian
        assert not grad[idx.n_tasks:].any()
        assert not obj.hessian_diagonal(x)[idx.n_tasks:].any()


# --------------------------------------------------------------------------- #
# the no-densification guarantee (satellite of the sparse-path bugfix)
# --------------------------------------------------------------------------- #
class TestNoDensification:
    def test_large_lp_solve_path_never_calls_toarray(self, monkeypatch):
        """Above n=1000 variables, nothing on the HiGHS path may densify."""
        graph = generators.layered_dag(600, seed=3)  # 600*2+600 = 1800 vars
        problem = _problem(graph, VddHoppingModel(modes=(0.5, 1.0)))

        def forbidden(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                f"dense conversion of a {self.shape} sparse matrix on the "
                "large-n solve path"
            )

        for cls in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix):
            monkeypatch.setattr(cls, "toarray", forbidden)
        solution = solve_vdd_lp(problem, backend="highs")
        assert solution.metadata["n_variables"] == 1800

    def test_simplex_backend_keeps_bound_rows_sparse_until_the_boundary(self):
        """The extra bound rows are stacked sparsely (the former np.vstack
        densified the whole system before appending them)."""
        calls = []
        original = sp.vstack

        def spy(blocks, *args, **kwargs):
            calls.append([b.shape for b in blocks])
            return original(blocks, *args, **kwargs)

        problem = _problem(generators.chain(30, seed=2),
                           VddHoppingModel(modes=MODES))
        import repro.modeling.backends.simplex as simplex_mod

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(simplex_mod.sparse, "vstack", spy)
            solution = solve_vdd_lp(problem, backend="simplex")
        check_solution(solution)
        # one sparse stack of [declared rows; bound rows], no dense vstack
        assert any(len(shapes) == 2 and shapes[1][0] == 30
                   for shapes in calls)
