"""Integration tests: the public API end to end, model orderings, experiments.

These tests exercise the whole pipeline the way a user (or the benchmark
harness) does: generate a workload, map it, solve it under every model,
validate the solutions, simulate them, and check the orderings the theory
predicts (Continuous <= Vdd-Hopping <= Discrete exact <= heuristics <=
no-reclaim, Incremental within its proven factor, ...).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ContinuousModel,
    DiscreteModel,
    IncrementalModel,
    MinEnergyProblem,
    VddHoppingModel,
    check_solution,
    continuous_lower_bound,
    generators,
    list_schedule,
    simulate_solution,
    solve,
    solve_no_reclaim,
    solve_uniform_scaling,
)
from repro.graphs.analysis import longest_path_length
from repro.utils.errors import InvalidModelError


def _make_problem(graph, slack, model):
    min_makespan = longest_path_length(graph) / model.max_speed
    return MinEnergyProblem(graph=graph, deadline=slack * min_makespan, model=model)


MODES = (0.4, 0.6, 0.8, 1.0)


class TestPublicAPI:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_docstring_quickstart_runs(self):
        graph = generators.fork(4, seed=0)
        problem = MinEnergyProblem(graph=graph, deadline=10.0, model=ContinuousModel())
        solution = solve(problem)
        assert solution.energy > 0

    def test_solve_dispatch_per_model(self, small_layered_dag):
        problems = {
            "continuous": _make_problem(small_layered_dag, 1.5, ContinuousModel(s_max=1.0)),
            "discrete": _make_problem(small_layered_dag, 1.5, DiscreteModel(modes=MODES)),
            "vdd": _make_problem(small_layered_dag, 1.5, VddHoppingModel(modes=MODES)),
            "incremental": _make_problem(small_layered_dag, 1.5,
                                         IncrementalModel.from_range(0.4, 1.0, 0.2)),
        }
        solvers = {name: solve(p).solver for name, p in problems.items()}
        assert solvers["continuous"].startswith("continuous")
        assert solvers["vdd"].startswith("vdd")
        assert solvers["discrete"].startswith("discrete")
        assert solvers["incremental"].startswith("incremental")

    def test_solve_rejects_unknown_model(self, small_layered_dag):
        from repro.core.models import EnergyModel

        class WeirdModel(EnergyModel):
            pass

        with pytest.raises(InvalidModelError):
            solve(MinEnergyProblem(graph=small_layered_dag, deadline=100.0,
                                   model=WeirdModel()))

    def test_exact_flag_for_incremental(self, small_layered_dag):
        p = _make_problem(small_layered_dag, 1.4,
                          IncrementalModel.from_range(0.5, 1.0, 0.25))
        approx = solve(p)
        exact = solve(p, exact=True)
        assert exact.energy <= approx.energy * (1 + 1e-9)


class TestModelOrderings:
    """The relations between models that the paper's framework implies."""

    @pytest.mark.parametrize("graph_class", ["chain", "fork", "tree",
                                             "series_parallel", "layered"])
    def test_continuous_below_vdd_below_discrete_below_baseline(self, graph_class):
        builder = generators.GRAPH_CLASSES[graph_class]
        graph = builder(14, seed=5)
        slack = 1.5
        continuous = solve(_make_problem(graph, slack, ContinuousModel(s_max=1.0)))
        vdd = solve(_make_problem(graph, slack, VddHoppingModel(modes=MODES)))
        discrete = solve(_make_problem(graph, slack, DiscreteModel(modes=MODES)))
        baseline = solve_no_reclaim(_make_problem(graph, slack, DiscreteModel(modes=MODES)))
        for s in (continuous, vdd, discrete, baseline):
            check_solution(s)
        assert continuous.energy <= vdd.energy * (1 + 1e-6)
        assert vdd.energy <= discrete.energy * (1 + 1e-6)
        assert discrete.energy <= baseline.energy * (1 + 1e-6)

    def test_incremental_between_continuous_and_guarantee(self, small_layered_dag):
        model = IncrementalModel.from_range(0.4, 1.0, 0.2)
        p = _make_problem(small_layered_dag, 1.5, model)
        inc = solve(p)
        lb = continuous_lower_bound(p)
        assert lb * (1 - 1e-6) <= inc.energy
        assert inc.energy <= lb * model.approximation_ratio_vs_continuous() * (1 + 1e-6) \
            or inc.energy <= inc.metadata["a_priori_ratio"] * lb * (1 + 1e-6)

    def test_vdd_with_two_modes_no_worse_than_discrete_exact(self):
        graph = generators.layered_dag(8, seed=6)
        slack = 1.3
        vdd = solve(_make_problem(graph, slack, VddHoppingModel(modes=(0.5, 1.0))))
        discrete = solve(_make_problem(graph, slack, DiscreteModel(modes=(0.5, 1.0))),
                         exact=True)
        assert vdd.energy <= discrete.energy * (1 + 1e-6)

    def test_looser_deadline_never_costs_more(self, small_layered_dag):
        tight = solve(_make_problem(small_layered_dag, 1.2, ContinuousModel(s_max=1.0)))
        loose = solve(_make_problem(small_layered_dag, 2.4, ContinuousModel(s_max=1.0)))
        assert loose.energy <= tight.energy * (1 + 1e-9)

    def test_more_modes_never_hurt_vdd(self, small_layered_dag):
        few = solve(_make_problem(small_layered_dag, 1.5, VddHoppingModel(modes=(0.4, 1.0))))
        many = solve(_make_problem(small_layered_dag, 1.5, VddHoppingModel(modes=MODES)))
        assert many.energy <= few.energy * (1 + 1e-6)

    @given(st.integers(min_value=3, max_value=16),
           st.floats(min_value=1.1, max_value=2.5),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_full_ordering_property(self, n, slack, seed):
        graph = generators.layered_dag(n, seed=seed)
        continuous = solve(_make_problem(graph, slack, ContinuousModel(s_max=1.0)))
        vdd = solve(_make_problem(graph, slack, VddHoppingModel(modes=MODES)))
        discrete = solve(_make_problem(graph, slack, DiscreteModel(modes=MODES)))
        uniform = solve_uniform_scaling(_make_problem(graph, slack, DiscreteModel(modes=MODES)))
        baseline = solve_no_reclaim(_make_problem(graph, slack, DiscreteModel(modes=MODES)))
        assert continuous.energy <= vdd.energy * (1 + 1e-6)
        assert vdd.energy <= discrete.energy * (1 + 1e-6)
        assert discrete.energy <= uniform.energy * (1 + 1e-6)
        assert uniform.energy <= baseline.energy * (1 + 1e-6)


class TestMappedWorkflow:
    """Full pipeline: generate -> map -> solve -> simulate."""

    def test_mapped_pipeline_all_models(self):
        graph = generators.layered_dag(25, seed=7)
        execution = list_schedule(graph, 4)
        combined = execution.combined_graph()
        deadline = 1.6 * longest_path_length(combined)
        for model in (ContinuousModel(s_max=1.0), DiscreteModel(modes=MODES),
                      VddHoppingModel(modes=MODES),
                      IncrementalModel.from_range(0.4, 1.0, 0.2)):
            problem = MinEnergyProblem(graph=combined, deadline=deadline, model=model)
            solution = solve(problem)
            check_solution(solution)
            trace = simulate_solution(solution, execution=execution)
            assert trace.total_energy == pytest.approx(solution.energy, rel=1e-6)
            assert trace.makespan <= deadline * (1 + 1e-6)

    def test_mapping_reduces_available_parallelism(self):
        """Mapping onto fewer processors only adds constraints, so the
        continuous optimum can only increase."""
        graph = generators.layered_dag(20, seed=8)
        deadline = 2.0 * longest_path_length(graph)

        def optimum(n_proc):
            if n_proc == 0:
                combined = graph
            else:
                combined = list_schedule(graph, n_proc).combined_graph()
            p = MinEnergyProblem(graph=combined, deadline=deadline,
                                 model=ContinuousModel(s_max=1.0))
            return solve(p).energy

        unmapped = optimum(0)
        eight = optimum(8)
        two = optimum(2)
        assert unmapped <= eight * (1 + 1e-6)
        assert eight <= two * (1 + 1e-6)


class TestExperimentDrivers:
    """Smoke-test every experiment driver at a reduced scale."""

    def test_e1_closed_form_agreement(self):
        from repro.experiments.drivers import experiment_e1_fork_closed_form

        table = experiment_e1_fork_closed_form(sizes=(2, 4), slacks=(1.2, 2.0), seed=1)
        assert len(table) == 4
        assert max(table.column("relative_difference")) < 1e-6

    def test_e2_tree_sp_agreement(self):
        from repro.experiments.drivers import experiment_e2_tree_sp

        table = experiment_e2_tree_sp(sizes=(8,), seed=2)
        assert max(table.column("relative_difference")) < 1e-4

    def test_e3_orderings(self):
        from repro.experiments.drivers import experiment_e3_vdd_lp

        table = experiment_e3_vdd_lp(n_tasks=10, mode_counts=(2, 4), repetitions=1, seed=3)
        assert all(r >= 1.0 - 1e-9 for r in table.column("lp_over_lb"))
        assert all(r >= 1.0 - 1e-9 for r in table.column("mixing_over_lp"))

    def test_e4_reduction_agreement(self):
        from repro.experiments.drivers import experiment_e4_discrete_exact

        table = experiment_e4_discrete_exact(sizes=(6,), repetitions=2, seed=4)
        assert all(a == 1.0 for a in table.column("two_partition_agreement"))
        assert all(r >= 1.0 - 1e-9 for r in table.column("heuristic_over_exact"))

    def test_e5_guarantees(self):
        from repro.experiments.drivers import experiment_e5_incremental_approx

        table = experiment_e5_incremental_approx(n_tasks=8, deltas=(0.35,), k_values=(1000,),
                                                 repetitions=1, seed=5)
        assert all(table.column("within_guarantee"))

    def test_e6_monotone_convergence(self):
        from repro.experiments.drivers import experiment_e6_modes_sweep

        table = experiment_e6_modes_sweep(n_tasks=10, mode_counts=(2, 8), repetitions=1, seed=6)
        vdd = table.column("vdd_ratio")
        assert vdd[-1] <= vdd[0] + 1e-9  # more modes help
        assert all(v >= 1.0 - 1e-9 for v in vdd)

    def test_e7_and_e9_baseline_relations(self):
        from repro.experiments.drivers import (
            experiment_e7_deadline_sweep,
            experiment_e9_reclaiming_gain,
        )

        t7 = experiment_e7_deadline_sweep(n_tasks=10, slacks=(1.2, 2.0), n_modes=4,
                                          repetitions=1, seed=7)
        assert all(r >= 1.0 - 1e-9 for r in t7.column("vdd_ratio"))
        t9 = experiment_e9_reclaiming_gain(n_tasks=10, slacks=(1.5,), n_modes=4,
                                           repetitions=1, seed=8)
        # the continuous model reclaims the most energy
        row = t9.rows[0]
        columns = list(t9.columns)
        cont = row[columns.index("continuous_saving")]
        for label in ("vdd_saving", "discrete_saving", "incremental_saving", "uniform_saving"):
            assert cont >= row[columns.index(label)] - 1e-9

    def test_e8_covers_requested_classes(self):
        from repro.experiments.drivers import experiment_e8_graph_classes

        table = experiment_e8_graph_classes(n_tasks=10, repetitions=1, seed=9,
                                            classes=("chain", "fork"))
        assert table.column("graph_class") == ["chain", "fork"]

    def test_e10_reports_positive_timings(self):
        from repro.experiments.drivers import experiment_e10_scalability

        table = experiment_e10_scalability(sizes=(10,), seed=10)
        assert all(v > 0 for v in table.rows[0][1:])

    def test_workload_ensemble_reproducible(self):
        from repro.experiments.workloads import WorkloadSpec, workload_ensemble

        spec = WorkloadSpec(graph_class="layered", n_tasks=12, seed=3)
        a = workload_ensemble(spec, repetitions=3)
        b = workload_ensemble(spec, repetitions=3)
        assert [p.deadline for p in a] == [p.deadline for p in b]
        assert [p.graph.works() for p in a] == [p.graph.works() for p in b]

    def test_workload_spec_validation(self):
        from repro.experiments.workloads import WorkloadSpec, make_workload

        with pytest.raises(InvalidModelError):
            make_workload(WorkloadSpec(graph_class="hypercube"))
        with pytest.raises(InvalidModelError):
            make_workload(WorkloadSpec(mapping="teleport"))

    def test_matching_models_consistency(self):
        from repro.experiments.workloads import matching_models

        models = matching_models(1.0, 4)
        assert models["discrete"].modes == models["vdd"].modes
        assert models["incremental"].n_modes == 4
        assert models["continuous"].max_speed == 1.0
