"""Tests for the sharded-sweep subsystem (shard partitioning + dump merge).

Covers: ShardSpec parsing/validation, determinism of both partitioning
strategies (including across processes), union/disjointness against the
unsharded grid, cost-weighted balance, the sweep/service/CLI wiring of
``shard=``, dump writing/loading, and every merge failure mode
(fingerprint mismatch, gaps, overlaps, corrupt dumps, mixed strategies).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.batch import (
    ShardDump,
    ShardSpec,
    assign_shards,
    build_sweep_coords,
    dump_payload,
    estimate_cost,
    grid_fingerprint,
    load_shard_dump,
    merge_shard_dumps,
    plan_sweep,
    rows_signature,
    sweep,
    sweep_cache_stats,
    write_shard_dump,
)
from repro.cache import disk_cache
from repro.utils.errors import (
    FingerprintMismatchError,
    MergeError,
    ShardError,
    ShardGapError,
    ShardOverlapError,
)

GRID = dict(graph_classes=("chain", "tree", "layered"), sizes=(8, 16),
            slacks=(1.2, 2.0), repetitions=2, seed=7)


def _shard_tables(n=3, *, strategy="cost-weighted", grid=GRID, **kwargs):
    return [sweep(**grid, shard=ShardSpec(i, n, strategy=strategy), **kwargs)
            for i in range(n)]


def _dumps(tables):
    return [ShardDump.from_payload(dump_payload(t), path=f"<shard{i}>")
            for i, t in enumerate(tables)]


class TestShardSpec:
    def test_parse_is_one_based(self):
        assert ShardSpec.parse("1/3") == ShardSpec(0, 3)
        assert ShardSpec.parse("3/3") == ShardSpec(2, 3)
        assert ShardSpec.parse(" 2 / 4 ") == ShardSpec(1, 4)
        assert ShardSpec.parse("1/1") == ShardSpec(0, 1)

    def test_parse_passes_specs_through(self):
        spec = ShardSpec(1, 3, strategy="round-robin")
        assert ShardSpec.parse(spec) is spec

    def test_spelling_round_trips(self):
        for spec in (ShardSpec(0, 3), ShardSpec(2, 3), ShardSpec(4, 5)):
            assert ShardSpec.parse(spec.spelling) == spec

    @pytest.mark.parametrize("text", ["0/3", "4/3", "-1/3", "1/0", "a/b",
                                      "1", "1/3/5", ""])
    def test_parse_rejects_bad_spellings(self, text):
        with pytest.raises(ShardError):
            ShardSpec.parse(text)

    def test_constructor_validation(self):
        with pytest.raises(ShardError):
            ShardSpec(3, 3)
        with pytest.raises(ShardError):
            ShardSpec(-1, 3)
        with pytest.raises(ShardError):
            ShardSpec(0, 0)
        with pytest.raises(ShardError):
            ShardSpec(0, 2, strategy="random")


class TestPartitioning:
    @pytest.mark.parametrize("strategy", ["round-robin", "cost-weighted"])
    def test_union_is_grid_and_shards_are_disjoint(self, strategy):
        coords = build_sweep_coords(**GRID)
        selections = [ShardSpec(i, 3, strategy=strategy).select(coords)
                      for i in range(3)]
        flat = [p for sel in selections for p in sel]
        assert sorted(flat) == list(range(len(coords)))  # union, no overlap

    @pytest.mark.parametrize("strategy", ["round-robin", "cost-weighted"])
    def test_assignment_is_deterministic_in_process(self, strategy):
        coords = build_sweep_coords(**GRID)
        first = assign_shards(coords, 4, strategy=strategy)
        assert all(assign_shards(coords, 4, strategy=strategy) == first
                   for _ in range(3))

    def test_assignment_is_deterministic_across_processes(self):
        """Same seed + grid => identical assignment in a fresh interpreter."""
        coords = build_sweep_coords(**GRID)
        here = {s: assign_shards(coords, 3, strategy=s)
                for s in ("round-robin", "cost-weighted")}
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            sys.modules["repro"].__file__)))
        code = (
            "import json\n"
            "from repro.batch import assign_shards, build_sweep_coords\n"
            f"coords = build_sweep_coords(**{GRID!r})\n"
            "print(json.dumps({s: assign_shards(coords, 3, strategy=s)\n"
            "    for s in ('round-robin', 'cost-weighted')}))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert json.loads(out.stdout) == here

    def test_round_robin_is_positional(self):
        coords = build_sweep_coords(**GRID)
        assert assign_shards(coords, 3, strategy="round-robin") == \
            [i % 3 for i in range(len(coords))]

    def test_cost_weighted_balances_estimated_load(self):
        coords = build_sweep_coords(graph_classes=("chain", "layered"),
                                    sizes=(16, 64, 256), slacks=(1.5,),
                                    repetitions=4, seed=3)
        assignment = assign_shards(coords, 3, strategy="cost-weighted")
        costs = [estimate_cost(c[0], c[1]) for c in coords]
        loads = [0.0, 0.0, 0.0]
        for cost, shard in zip(costs, assignment):
            loads[shard] += cost
        # the LPT invariant: remove the heaviest item and no shard dominates
        assert max(loads) - max(costs) <= min(loads) + 1e-12
        assert all(s in assignment for s in range(3))  # no empty shard here
        # and it beats round-robin's worst shard on this lopsided grid
        rr_loads = [0.0, 0.0, 0.0]
        for i, cost in enumerate(costs):
            rr_loads[i % 3] += cost
        assert max(loads) <= max(rr_loads)

    def test_unknown_strategy_and_bad_count(self):
        coords = build_sweep_coords(**GRID)
        with pytest.raises(ShardError):
            assign_shards(coords, 3, strategy="alphabetical")
        with pytest.raises(ShardError):
            assign_shards(coords, 0)

    def test_priors_override_steers_the_packing(self):
        coords = [("chain", 10, 1.5, 3.0, 1), ("layered", 10, 1.5, 3.0, 2)]
        flipped = {"chain": (100.0, 1.0), "layered": (0.001, 1.0), None: (0.001, 1.0)}
        default = assign_shards(coords, 2, strategy="cost-weighted")
        steered = assign_shards(coords, 2, strategy="cost-weighted",
                                priors=flipped)
        # heaviest item always lands on shard 0; the priors decide which
        assert default[1] == 0 and steered[0] == 0

    def test_estimate_cost_grows_with_size(self):
        assert estimate_cost("layered", 200) > estimate_cost("layered", 50)
        assert estimate_cost("layered", 64) > estimate_cost("chain", 64)


class TestFingerprint:
    def test_same_grid_same_fingerprint(self):
        a = plan_sweep(**GRID)
        b = plan_sweep(**GRID, shard="2/3")
        assert a.fingerprint == b.fingerprint  # sharding doesn't change identity

    def test_defaults_are_folded_in(self):
        explicit = plan_sweep(**GRID, model="continuous", s_max=1.0)
        assert explicit.fingerprint == plan_sweep(**GRID).fingerprint

    @pytest.mark.parametrize("change", [dict(seed=8), dict(sizes=(8, 17)),
                                        dict(slacks=(1.2,)),
                                        dict(model="discrete")])
    def test_grid_changes_change_the_fingerprint(self, change):
        assert plan_sweep(**{**GRID, **change}).fingerprint != \
            plan_sweep(**GRID).fingerprint

    def test_method_shapes_the_fingerprint(self):
        # shards solved with different methods must refuse to merge
        assert plan_sweep(**GRID, method="gp-slsqp").fingerprint != \
            plan_sweep(**GRID).fingerprint

    def test_int_and_float_axis_spellings_agree(self):
        # one leg driven from the API with slacks=(1.2, 2), another from the
        # CLI (always floats): identical grids must merge
        a = plan_sweep(**{**GRID, "slacks": (1.2, 2)}, shard="1/3")
        b = plan_sweep(**{**GRID, "slacks": (1.2, 2.0)}, shard="2/3")
        assert a.grid == b.grid
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_is_stable_across_calls(self):
        coords = build_sweep_coords(**GRID)
        assert grid_fingerprint(coords, GRID) == grid_fingerprint(coords, GRID)

    def test_unknown_grid_kwarg_is_rejected(self):
        with pytest.raises(TypeError):
            plan_sweep(**GRID, sizez=(8,))


class TestShardedSweep:
    def test_rows_are_tagged(self):
        table = sweep(**GRID, shard="2/3")
        assert set(table.column("shard_index")) == {1}
        assert set(table.column("shard_count")) == {3}
        fingerprint = table.manifest["fingerprint"]
        assert set(table.column("grid_fingerprint")) == {fingerprint}
        assert "shard 2/3" in table.title

    def test_unsharded_rows_are_tagged_zero_of_one(self):
        table = sweep(**GRID)
        assert set(table.column("shard_index")) == {0}
        assert set(table.column("shard_count")) == {1}
        assert table.manifest["strategy"] == "unsharded"

    def test_shards_cover_the_unsharded_grid(self):
        full = sweep(**GRID)
        tables = _shard_tables(3)
        assert sum(len(t) for t in tables) == len(full)
        merged = merge_shard_dumps(_dumps(tables))
        assert rows_signature(merged) == rows_signature(full)
        # canonical order: merged rows carry the exact unsharded coords order
        coords = [tuple(r[:5]) for r in merged.rows]
        assert coords == [tuple(r[:5]) for r in full.rows]

    def test_shard_only_materialises_its_slice(self):
        plan = plan_sweep(**GRID, shard="1/3")
        assert len(plan.grid) == 24
        assert len(plan.problems) == len(plan.coords) < len(plan.grid)
        assert all(coord in plan.grid for coord in plan.coords)

    def test_classes_with_extra_tasks_still_merge(self):
        # fork(n) generates n+1 tasks; rows must key on the *grid* size so
        # the dumps still cover the grid exactly
        grid = dict(graph_classes=("fork", "series_parallel"), sizes=(8,),
                    slacks=(1.5,), repetitions=2, seed=3)
        tables = [sweep(**grid, shard=ShardSpec(i, 2)) for i in range(2)]
        merged = merge_shard_dumps(
            [ShardDump.from_payload(dump_payload(t), path=f"<s{i}>")
             for i, t in enumerate(tables)])
        full = sweep(**grid)
        assert rows_signature(merged) == rows_signature(full)
        assert set(merged.column("n_tasks")) == {8}

    def test_shards_share_a_disk_cache(self, tmp_path):
        """A merged warm re-run is served by the cache, not the pool."""
        for i in range(1, 4):
            table = sweep(**GRID, shard=f"{i}/3",
                          cache=disk_cache(tmp_path / "cache"))
            assert sweep_cache_stats(table)["hits"] == 0  # cold legs
        warm = sweep(**GRID, cache=disk_cache(tmp_path / "cache"))
        assert sweep_cache_stats(warm)["hit_rate"] == 1.0
        assert all(warm.column("cache_hit"))


class TestMerge:
    def test_merge_rejects_mismatched_grids(self):
        tables = _shard_tables(3)
        other = sweep(**{**GRID, "seed": 8}, shard=ShardSpec(0, 3))
        bad = _dumps([other] + tables[1:])
        with pytest.raises(FingerprintMismatchError):
            merge_shard_dumps(bad)

    def test_merge_detects_gaps(self):
        tables = _shard_tables(3)
        with pytest.raises(ShardGapError) as err:
            merge_shard_dumps(_dumps(tables)[:2])
        assert "uncovered" in str(err.value)

    def test_merge_detects_truncated_shard_rows(self):
        dumps = _dumps(_shard_tables(3))
        dumps[1].rows = dumps[1].rows[:-1]
        with pytest.raises(ShardGapError):
            merge_shard_dumps(dumps)

    def test_merge_detects_duplicate_shards(self):
        dumps = _dumps(_shard_tables(3))
        with pytest.raises(ShardOverlapError):
            merge_shard_dumps(dumps + [dumps[0]])

    def test_merge_detects_foreign_rows(self):
        dumps = _dumps(_shard_tables(3))
        foreign = list(dumps[0].rows[0])
        foreign[4] = 123456789  # a seed not in the grid
        dumps[1].rows.append(foreign)
        with pytest.raises(ShardOverlapError):
            merge_shard_dumps(dumps)

    def test_merge_rejects_mixed_strategies(self):
        rr = sweep(**GRID, shard=ShardSpec(0, 3, strategy="round-robin"))
        cw = _shard_tables(3)[1:]
        with pytest.raises(MergeError, match="strategy"):
            merge_shard_dumps(_dumps([rr] + cw))

    def test_merge_rejects_inconsistent_shard_counts(self):
        two = sweep(**GRID, shard=ShardSpec(0, 2))
        three = _shard_tables(3)[1:]
        with pytest.raises(MergeError, match="shard_count"):
            merge_shard_dumps(_dumps([two] + three))

    def test_merge_of_a_single_full_dump_is_identity(self):
        full = sweep(**GRID)
        merged = merge_shard_dumps(_dumps([full]))
        assert rows_signature(merged) == rows_signature(full)

    def test_merge_requires_dumps(self):
        with pytest.raises(MergeError):
            merge_shard_dumps([])


class TestDumpFiles:
    def test_write_and_load_round_trip(self, tmp_path):
        table = sweep(**GRID, shard="1/3")
        path = write_shard_dump(tmp_path / "s1.json", table)
        dump = load_shard_dump(path)
        assert dump.fingerprint == table.manifest["fingerprint"]
        assert dump.shard_index == 0 and dump.shard_count == 3
        assert len(dump.rows) == len(table)
        assert dump.grid == [tuple(c) for c in table.manifest["grid"]]

    def test_merge_accepts_paths_and_dumps_mixed(self, tmp_path):
        tables = _shard_tables(3)
        paths = [write_shard_dump(tmp_path / f"s{i}.json", t)
                 for i, t in enumerate(tables)]
        merged = merge_shard_dumps([paths[0], load_shard_dump(paths[1]),
                                    paths[2]])
        assert rows_signature(merged) == rows_signature(sweep(**GRID))

    def test_corrupt_dump_is_a_merge_error(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text('{"kind": "repro-sweep-shard", "trunc')
        with pytest.raises(MergeError, match="corrupt"):
            load_shard_dump(path)

    def test_wrong_kind_is_a_merge_error(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(MergeError, match="kind"):
            load_shard_dump(path)

    def test_missing_header_fields_are_a_merge_error(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"kind": "repro-sweep-shard",
                                    "fingerprint": "abc"}))
        with pytest.raises(MergeError, match="missing"):
            load_shard_dump(path)

    def test_dump_requires_a_sweep_manifest(self):
        from repro.utils.tables import Table

        with pytest.raises(MergeError, match="manifest"):
            dump_payload(Table(columns=["a"]))


class TestServiceSharding:
    def test_submit_sweep_shard_tags_the_job_table(self):
        from repro.service import SolverService

        with SolverService(workers=2, use_threads=True) as service:
            handles = [service.submit_sweep(**GRID, shard=f"{i}/3")
                       for i in range(1, 4)]
            tables = [service.job_table(h.job_id, timeout=120)
                      for h in handles]
        assert sum(len(t) for t in tables) == 24
        fingerprints = {t.column("grid_fingerprint")[0] for t in tables}
        assert len(fingerprints) == 1
        assert [t.column("shard_index")[0] for t in tables] == [0, 1, 2]
        record = handles[0].describe()
        assert record["shard"] == "1/3"
        assert record["grid_fingerprint"] == fingerprints.pop()

    def test_service_shards_merge_like_cli_shards(self):
        from repro.service import SolverService

        with SolverService(workers=2, use_threads=True) as service:
            tables = [service.job_table(
                service.submit_sweep(**GRID, shard=f"{i}/3").job_id,
                timeout=120) for i in range(1, 4)]
        merged = merge_shard_dumps(_dumps(_shard_tables(3)))
        service_rows = sorted(
            tuple(r[:5]) for t in tables for r in t.rows)
        assert service_rows == sorted(tuple(r[:5]) for r in merged.rows)


class TestCLI:
    def test_sweep_shard_out_and_merge(self, tmp_path, capsys):
        from repro.cli import main

        args = ["--classes", "chain,tree", "--sizes", "8", "--slacks",
                "1.3,2.0", "--repetitions", "2", "--seed", "5"]
        for i in range(1, 4):
            code = main(["sweep", *args, "--shard", f"{i}/3",
                         "--out", str(tmp_path / f"s{i}.json"), "--csv"])
            assert code == 0
        capsys.readouterr()
        code = main(["merge", *(str(tmp_path / f"s{i}.json")
                                for i in range(1, 4)),
                     "--out", str(tmp_path / "merged.json"), "--csv"])
        assert code == 0
        captured = capsys.readouterr()
        assert "merged 3 shard dump(s) -> 8 rows" in captured.err
        merged = load_shard_dump(tmp_path / "merged.json")
        assert len(merged.rows) == 8

    def test_merge_gap_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        args = ["--classes", "chain,tree", "--sizes", "8", "--slacks",
                "1.3,2.0", "--repetitions", "2", "--seed", "5"]
        for i in range(1, 4):
            main(["sweep", *args, "--shard", f"{i}/3",
                  "--out", str(tmp_path / f"s{i}.json"), "--csv"])
        capsys.readouterr()
        dumps = {i: load_shard_dump(tmp_path / f"s{i}.json")
                 for i in range(1, 4)}
        dropped = next(i for i, d in dumps.items() if d.rows)
        kept = [str(tmp_path / f"s{i}.json") for i in dumps if i != dropped]
        code = main(["merge", *kept])
        assert code == 2
        assert "uncovered" in capsys.readouterr().err

    def test_bad_shard_spelling_exits_nonzero(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--classes", "chain", "--sizes", "8",
                     "--shard", "0/3"])
        assert code == 2
        assert "1-based" in capsys.readouterr().err
