"""Tests for the transport-agnostic client API (:mod:`repro.api`).

Covers: the wire protocol envelopes (round-trips, malformed payloads,
schema-version rejection), the durable job store (atomic transitions,
typed load failures), transport parity (the same sweep submitted via
Local, Disk and HTTP transports yields identical result tables and job
records), disk re-attach/resume after a "process restart", the HTTP error
paths (unknown job, malformed payload, version mismatch -> 4xx typed
bodies), the streaming progress events, the shared exponential-backoff
polling, and the reworked CLI verbs (submit --detach / attach / status /
results / cancel / jobs --strict).
"""

from __future__ import annotations

import json
import itertools
import urllib.error
import urllib.request

import pytest

from repro.api import (
    SCHEMA_VERSION,
    DiskTransport,
    HTTPTransport,
    JobRecord,
    JobStore,
    LocalTransport,
    ProgressEvent,
    SolverClient,
    SweepRequest,
    backoff_intervals,
    table_from_wire,
    table_to_wire,
)
from repro.api.protocol import error_to_wire, raise_wire_error
from repro.batch import rows_signature, sweep
from repro.server import SolverHTTPServer
from repro.utils.errors import (
    InvalidModelError,
    JobStateError,
    SchemaVersionError,
    TransportError,
    UnknownJobError,
)
from repro.utils.tables import Table

REQUEST = SweepRequest(graph_classes=("chain",), sizes=(6, 8),
                       slacks=(1.5,), repetitions=1, seed=7, name="parity")


def reference_signature():
    table = sweep(graph_classes=("chain",), sizes=(6, 8), slacks=(1.5,),
                  repetitions=1, seed=7)
    return rows_signature(table)


@pytest.fixture(scope="module")
def http_server(tmp_path_factory):
    transport = DiskTransport(tmp_path_factory.mktemp("server-jobs"),
                              use_threads=True)
    with SolverHTTPServer(transport).start() as server:
        yield server


@pytest.fixture
def make_client(tmp_path, http_server):
    """Factory building a fresh client for a named transport."""
    opened = []

    def build(kind: str) -> SolverClient:
        if kind == "local":
            client = SolverClient(LocalTransport(workers=2, use_threads=True))
        elif kind == "disk":
            client = SolverClient(DiskTransport(tmp_path / "jobs",
                                                use_threads=True))
        elif kind == "http":
            client = SolverClient(HTTPTransport(http_server.url))
        else:  # pragma: no cover - guard against fixture typos
            raise ValueError(kind)
        opened.append(client)
        return client

    yield build
    for client in opened:
        client.close()


class TestBackoff:
    def test_intervals_grow_exponentially_and_cap(self):
        schedule = list(itertools.islice(
            backoff_intervals(0.1, factor=2.0, maximum=1.0), 6))
        assert schedule == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            next(backoff_intervals(0.0))
        with pytest.raises(ValueError, match="factor"):
            next(backoff_intervals(0.1, factor=0.5))


class TestProtocolEnvelopes:
    def test_sweep_request_round_trip(self):
        request = SweepRequest(graph_classes=("tree",), sizes=(16,),
                               slacks=(1.2, 2.0), model="discrete",
                               method="heuristic", options={"greedy_threshold": 64},
                               shard="2/3", priors={"": (0.5, 2.0)},
                               name="rt")
        again = SweepRequest.from_wire(request.to_wire())
        assert again == request
        assert again.shard_spec().index == 1
        assert again.fit_priors() == {None: (0.5, 2.0)}

    def test_sweep_request_rejects_malformed_payloads(self):
        with pytest.raises(TransportError, match="JSON object"):
            SweepRequest.from_wire([1, 2, 3])
        with pytest.raises(TransportError, match="unknown fields"):
            SweepRequest.from_wire({"sizes": [8], "bogus": 1})
        with pytest.raises(TransportError, match="malformed"):
            SweepRequest.from_wire({"sizes": "not-a-list-of-ints"})
        with pytest.raises(InvalidModelError):
            SweepRequest.from_wire({"model": "quantum"})

    def test_schema_version_rejected(self):
        payload = REQUEST.to_wire()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError, match="schema_version"):
            SweepRequest.from_wire(payload)
        with pytest.raises(SchemaVersionError):
            JobRecord.from_wire({"job_id": "j", "schema_version": "nope"})

    def test_job_record_round_trip_and_bad_status(self):
        record = JobRecord(job_id="job-1", name="n", status="running",
                           created_at=1.0, total=4, done=2, failed=1,
                           cache_hits=1, shard="1/2", fingerprint="abc")
        assert JobRecord.from_wire(record.to_wire()) == record
        assert not record.terminal
        with pytest.raises(TransportError, match="unknown status"):
            JobRecord.from_wire({"job_id": "j", "status": "exploded"})

    def test_table_round_trip_keeps_manifest(self):
        table = Table(columns=["a", "b"], rows=[[1, 2.5], [3, None]], title="t")
        table.manifest = {"fingerprint": "f", "grid": [[1, 2]]}
        again = table_from_wire(table_to_wire(table))
        assert again.columns == ["a", "b"]
        assert again.rows == [[1, 2.5], [3, None]]
        assert again.manifest == table.manifest
        with pytest.raises(TransportError, match="columns"):
            table_from_wire({"rows": []})
        with pytest.raises(TransportError, match="do not match"):
            table_from_wire({"schema_version": 1, "columns": ["a"],
                             "rows": [[1, 2]]})

    def test_typed_errors_survive_the_wire(self):
        body = error_to_wire(UnknownJobError("no job 'x'"))
        with pytest.raises(UnknownJobError, match="no job"):
            raise_wire_error(body)
        with pytest.raises(TransportError, match="Exotic"):
            raise_wire_error({"error": {"type": "Exotic", "message": "m"}})
        with pytest.raises(TransportError):
            raise_wire_error("not an error body")

    def test_progress_event_round_trip(self):
        event = ProgressEvent(job_id="j", seq=3, status="done", done=4,
                              total=4, failed=0, cache_hits=2, timestamp=9.0)
        assert ProgressEvent.from_wire(event.to_wire()) == event
        assert event.terminal


class TestJobStore:
    def test_missing_corrupt_and_newer_records_are_typed(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(UnknownJobError):
            store.load("job-none")
        (tmp_path / "job-bad.json").write_text("{ truncated")
        with pytest.raises(TransportError, match="corrupt"):
            store.load("job-bad")
        (tmp_path / "job-new.json").write_text(json.dumps(
            {"job_id": "job-new", "schema_version": SCHEMA_VERSION + 7}))
        with pytest.raises(SchemaVersionError):
            store.load("job-new")

    def test_lifecycle_transitions_are_enforced(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(REQUEST)
        job_id = record["job_id"]
        with pytest.raises(JobStateError, match="illegal"):
            store.transition(job_id, "done")  # pending cannot jump to done
        store.transition(job_id, "running")
        store.transition(job_id, "running", done=1)  # progress update edge
        store.transition(job_id, "done")
        assert store.record(job_id).terminal
        with pytest.raises(JobStateError, match="terminal"):
            store.transition(job_id, "running")
        with pytest.raises(JobStateError, match="unknown job status"):
            store.transition(job_id, "paused")

    def test_update_respects_the_lifecycle_too(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        with pytest.raises(JobStateError, match="status"):
            store.update(job_id, status="done")  # no side-channel edges
        store.transition(job_id, "running")
        store.update(job_id, done=1)
        store.transition(job_id, "done")
        with pytest.raises(JobStateError, match="terminal"):
            store.update(job_id, done=2)  # terminal records are immutable

    def test_reclaim_only_takes_running_records_back(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        with pytest.raises(JobStateError, match="reclaim"):
            store.reclaim(job_id)  # pending is not reclaimable
        store.transition(job_id, "running")
        assert store.reclaim(job_id)["status"] == "pending"

    def test_scan_reports_skips_without_hiding_records(self, tmp_path):
        store = JobStore(tmp_path)
        good = store.create(REQUEST)["job_id"]
        (tmp_path / "garbage.json").write_text("not json at all")
        records, skipped = store.scan()
        assert [r["job_id"] for r in records] == [good]
        assert len(skipped) == 1 and skipped[0][0] == "garbage.json"

    def test_stored_request_is_resumable(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = store.create(REQUEST)["job_id"]
        assert store.request(job_id) == REQUEST


class TestTransportParity:
    """The acceptance criterion: one scenario, three transports, same rows."""

    def test_same_sweep_same_results_everywhere(self, make_client):
        signatures = {}
        records = {}
        for kind in ("local", "disk", "http"):
            client = make_client(kind)
            record = client.submit(REQUEST)
            assert record.job_id
            table = client.results(record.job_id, timeout=120)
            signatures[kind] = rows_signature(table)
            records[kind] = client.status(record.job_id)
        reference = reference_signature()
        assert signatures["local"] == signatures["disk"] == \
            signatures["http"] == reference
        for kind, record in records.items():
            assert record.status == "done", kind
            assert (record.total, record.done, record.failed) == (2, 2, 0), kind
            assert record.name == "parity", kind

    @pytest.mark.parametrize("kind", ["local", "disk", "http"])
    def test_job_listing_and_unknown_job(self, make_client, kind):
        client = make_client(kind)
        record = client.submit(REQUEST)
        client.wait(record.job_id, timeout=120)
        listed = {r.job_id for r in client.jobs()}
        assert record.job_id in listed
        with pytest.raises(UnknownJobError):
            client.status("job-does-not-exist")

    @pytest.mark.parametrize("kind", ["local", "disk", "http"])
    def test_cancel_on_a_terminal_job_is_a_no_op(self, make_client, kind):
        client = make_client(kind)
        record = client.submit(REQUEST)
        client.wait(record.job_id, timeout=120)
        after = client.cancel(record.job_id)
        assert after.status == "done"

    @pytest.mark.parametrize("kind", ["local", "disk", "http"])
    def test_events_end_with_a_terminal_event(self, make_client, kind):
        client = make_client(kind)
        record = client.submit(REQUEST)
        events = list(client.events(record.job_id, timeout=120))
        assert events, "at least the terminal event must be emitted"
        assert events[-1].terminal and events[-1].status == "done"
        assert [e.seq for e in events] == sorted(e.seq for e in events)
        assert events[-1].done == events[-1].total == 2


class TestDiskDurability:
    def test_detached_submit_stays_pending_then_resumes(self, tmp_path):
        transport = DiskTransport(tmp_path, use_threads=True)
        record = transport.submit(REQUEST, start=False)
        assert transport.status(record.job_id).status == "pending"
        transport.close()

        # "restart": a brand-new transport over the same directory
        reborn = DiskTransport(tmp_path, use_threads=True)
        attached = reborn.attach(record.job_id)
        assert attached.status in ("pending", "running", "done")
        table = reborn.results(record.job_id, timeout=120)
        assert rows_signature(table) == reference_signature()
        assert reborn.status(record.job_id).status == "done"
        reborn.close()

    def test_orphaned_running_record_is_resumed_on_attach(self, tmp_path):
        transport = DiskTransport(tmp_path, use_threads=True)
        record = transport.submit(REQUEST, start=False)
        # simulate a runner that died mid-job in another process long ago
        # (no heartbeat at all reads as maximally stale)
        transport.store.transition(record.job_id, "running")
        attached = transport.attach(record.job_id)
        table = transport.results(record.job_id, timeout=120)
        assert attached.job_id == record.job_id
        assert rows_signature(table) == reference_signature()
        transport.close()

    def test_attach_never_duplicates_a_live_runner(self, tmp_path):
        import time

        transport = DiskTransport(tmp_path, use_threads=True)
        record = transport.submit(REQUEST, start=False)
        # a running record with a *fresh* heartbeat belongs to a live
        # process somewhere: attach must follow it, not fork a second run
        transport.store.transition(record.job_id, "running",
                                   runner_pid=99999,
                                   runner_heartbeat=time.time())
        observer = DiskTransport(tmp_path, use_threads=True)
        attached = observer.attach(record.job_id)
        assert attached.status == "running"
        assert not observer._runners, "attach spawned a duplicate runner"
        # once the heartbeat goes stale the same attach call resumes it
        observer.store.update(record.job_id,
                              runner_heartbeat=time.time() - 3600)
        observer.attach(record.job_id)
        table = observer.results(record.job_id, timeout=120)
        assert rows_signature(table) == reference_signature()
        observer.close()
        transport.close()

    def test_resume_is_served_warm_from_the_shared_cache(self, tmp_path):
        cache_dir = tmp_path / "shared-cache"
        first = DiskTransport(tmp_path / "jobs-a", cache_dir=str(cache_dir),
                              use_threads=True)
        record = first.submit(REQUEST)
        first.results(record.job_id, timeout=120)
        first.close()

        # a partially-complete job elsewhere resumes against the same
        # cache: every already-solved cell comes back as a warm hit
        second = DiskTransport(tmp_path / "jobs-b", cache_dir=str(cache_dir),
                               use_threads=True)
        detached = second.submit(REQUEST, start=False)
        second.attach(detached.job_id)
        table = second.results(detached.job_id, timeout=120)
        assert all(table.column("cache_hit"))
        assert rows_signature(table) == reference_signature()
        assert second.status(detached.job_id).cache_hits == 2
        second.close()

    def test_cancel_of_a_pending_job_needs_no_runner(self, tmp_path):
        transport = DiskTransport(tmp_path, use_threads=True)
        record = transport.submit(REQUEST, start=False)
        cancelled = transport.cancel(record.job_id)
        assert cancelled.status == "cancelled"
        # results of a never-started job: an empty sweep-shaped table
        table = transport.results(record.job_id, timeout=5)
        assert len(table) == 0 and "graph_class" in table.columns
        transport.close()

    def test_local_jobs_do_not_survive_by_design(self):
        client = SolverClient(LocalTransport(workers=1, use_threads=True))
        record = client.submit(REQUEST)
        client.wait(record.job_id, timeout=120)
        other = SolverClient(LocalTransport(workers=1, use_threads=True))
        with pytest.raises(UnknownJobError, match="restart"):
            other.status(record.job_id)
        client.close()
        other.close()


class TestHTTPErrorPaths:
    def _post(self, url, payload):
        data = payload if isinstance(payload, bytes) else \
            json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(url, data=data, method="POST",
                                     headers={"Content-Type": "application/json"})
        return urllib.request.urlopen(req, timeout=30)

    def test_unknown_job_is_a_404_with_a_typed_body(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{http_server.url}/v1/jobs/job-nope",
                                   timeout=30)
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "UnknownJobError"

    def test_malformed_payload_is_a_400(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{http_server.url}/v1/jobs", b"this is not json")
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["type"] == \
            "TransportError"

    def test_schema_version_mismatch_is_a_400(self, http_server):
        payload = REQUEST.to_wire()
        payload["schema_version"] = SCHEMA_VERSION + 5
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{http_server.url}/v1/jobs", payload)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["type"] == \
            "SchemaVersionError"
        # and the transport re-raises it as the typed exception
        client = SolverClient(HTTPTransport(http_server.url))
        with pytest.raises(SchemaVersionError):
            client.transport._call("POST", "/jobs", body=payload)

    def test_premature_results_are_a_409(self, http_server):
        # a record parked as pending on the server's own store
        record = http_server.transport.submit(REQUEST, start=False)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{http_server.url}/v1/jobs/{record.job_id}/results",
                timeout=30)
        assert excinfo.value.code == 409
        assert json.loads(excinfo.value.read())["error"]["type"] == \
            "JobStateError"

    def test_unknown_route_is_a_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{http_server.url}/v1/frobnicate",
                                   timeout=30)
        assert excinfo.value.code == 404

    def test_http_transport_rejects_non_http_urls(self):
        with pytest.raises(TransportError, match="http"):
            HTTPTransport("ftp://nope")


class TestShardDumpSchemaVersion:
    def test_unknown_dump_version_is_rejected(self, tmp_path):
        from repro.batch import dump_payload, load_shard_dump

        table = sweep(graph_classes=("chain",), sizes=(6,), slacks=(1.5,),
                      seed=3)
        payload = dump_payload(table)
        assert payload["schema_version"] == 1
        payload["schema_version"] = 99
        path = tmp_path / "newer.json"
        path.write_text(json.dumps(payload, default=repr))
        with pytest.raises(SchemaVersionError, match="schema_version 99"):
            load_shard_dump(path)

    def test_legacy_dump_without_the_field_still_loads(self, tmp_path):
        from repro.batch import dump_payload, load_shard_dump

        table = sweep(graph_classes=("chain",), sizes=(6,), slacks=(1.5,),
                      seed=3)
        payload = dump_payload(table)
        del payload["schema_version"]
        del payload["version"]
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload, default=repr))
        assert len(load_shard_dump(path).rows) == 1


class TestCliVerbs:
    def test_detach_attach_status_results_cycle(self, tmp_path, capsys):
        from repro.cli import main

        jobs_dir = str(tmp_path / "jobs")
        code = main(["submit", "--classes", "chain", "--sizes", "6",
                     "--seed", "3", "--jobs-dir", jobs_dir, "--detach"])
        assert code == 0
        job_id = capsys.readouterr().out.strip()
        assert job_id.startswith("job-")

        assert main(["status", job_id, "--jobs-dir", jobs_dir]) == 0
        assert "pending" in capsys.readouterr().out

        code = main(["attach", job_id, "--jobs-dir", jobs_dir, "--csv",
                     "--poll-interval", "0.02"])
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("graph_class,")
        assert "attached to" in captured.err

        assert main(["results", job_id, "--jobs-dir", jobs_dir, "--csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2  # header + 1 row

        assert main(["status", job_id, "--jobs-dir", jobs_dir, "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["status"] == "done"

    def test_unknown_job_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["status", "job-nope", "--jobs-dir", str(tmp_path)])
        assert code == 2
        assert "no job" in capsys.readouterr().err

    def test_cancel_pending_job(self, tmp_path, capsys):
        from repro.cli import main

        jobs_dir = str(tmp_path / "jobs")
        main(["submit", "--classes", "chain", "--sizes", "6", "--seed", "3",
              "--jobs-dir", jobs_dir, "--detach"])
        job_id = capsys.readouterr().out.strip()
        assert main(["cancel", job_id, "--jobs-dir", jobs_dir]) == 0
        assert "cancelled" in capsys.readouterr().err

    def test_jobs_strict_flags_corrupt_records(self, tmp_path, capsys):
        from repro.cli import main

        jobs_dir = tmp_path / "jobs"
        main(["submit", "--classes", "chain", "--sizes", "6", "--seed", "3",
              "--jobs-dir", str(jobs_dir), "--detach"])
        capsys.readouterr()
        (jobs_dir / "broken.json").write_text("{ nope")

        assert main(["jobs", "--jobs-dir", str(jobs_dir)]) == 0
        captured = capsys.readouterr()
        assert "1 job record(s), 1 skipped" in captured.out
        assert "broken.json" in captured.err

        assert main(["jobs", "--jobs-dir", str(jobs_dir), "--strict"]) == 1
        assert "--strict" in capsys.readouterr().err

    def test_jobs_footer_counts_clean_listings(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["jobs", "--jobs-dir", str(tmp_path / "empty")]) == 0
        assert "no job records" in capsys.readouterr().out

    def test_results_timeout_exits_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        jobs_dir = str(tmp_path / "jobs")
        main(["submit", "--classes", "chain", "--sizes", "6", "--seed", "3",
              "--jobs-dir", jobs_dir, "--detach"])
        job_id = capsys.readouterr().out.strip()
        # the job is parked (never started): a bounded wait must exit 2
        # with an 'error:' line, not dump a TimeoutError traceback
        code = main(["results", job_id, "--jobs-dir", jobs_dir,
                     "--timeout", "0.2", "--poll-interval", "0.02"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_jobs_strict_audits_a_remote_store(self, tmp_path_factory, capsys):
        from repro.cli import main
        from repro.server import SolverHTTPServer

        jobs_dir = tmp_path_factory.mktemp("strict-srv")
        transport = DiskTransport(jobs_dir, use_threads=True)
        (jobs_dir / "rotten.json").write_text("{ definitely not json")
        with SolverHTTPServer(transport).start() as server:
            assert main(["jobs", "--url", server.url]) == 0
            captured = capsys.readouterr()
            assert "1 skipped" in captured.out
            assert "rotten.json" in captured.err
            assert main(["jobs", "--url", server.url, "--strict"]) == 1

    def test_http_cli_round_trip(self, http_server, capsys):
        from repro.cli import main

        code = main(["submit", "--classes", "chain", "--sizes", "6",
                     "--seed", "5", "--url", http_server.url, "--detach"])
        assert code == 0
        job_id = capsys.readouterr().out.strip()

        code = main(["attach", job_id, "--url", http_server.url, "--csv",
                     "--poll-interval", "0.02"])
        assert code == 0
        assert capsys.readouterr().out.startswith("graph_class,")

        assert main(["jobs", "--url", http_server.url]) == 0
        assert job_id in capsys.readouterr().out
