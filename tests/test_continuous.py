"""Tests for the Continuous-model solvers (Theorems 1 and 2 + convex solver)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.continuous import (
    continuous_lower_bound,
    critical_path_lower_bound,
    equivalent_load,
    fork_optimal_speeds,
    load_lower_bound,
    solve_chain,
    solve_continuous,
    solve_fork,
    solve_general_convex,
    solve_join,
    solve_series_parallel,
    solve_single_task,
    solve_tree,
)
from repro.continuous.tree import is_tree, tree_equivalent_load
from repro.core.models import ContinuousModel
from repro.core.power import PowerLaw
from repro.core.problem import MinEnergyProblem
from repro.core.validation import check_solution
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import (
    InfeasibleProblemError,
    InvalidGraphError,
    InvalidModelError,
    SolverError,
)
from repro.utils.numerics import cube_root


def _problem(graph, slack, s_max=1.0):
    min_makespan = longest_path_length(graph) / s_max
    return MinEnergyProblem(graph=graph, deadline=slack * min_makespan,
                            model=ContinuousModel(s_max=s_max))


class TestClosedForms:
    def test_single_task_runs_until_deadline(self):
        g = TaskGraph(tasks=[("A", 4.0)])
        p = MinEnergyProblem(graph=g, deadline=2.0, model=ContinuousModel(s_max=10.0))
        s = solve_single_task(p)
        assert s.speeds()["A"] == pytest.approx(2.0)
        assert s.energy == pytest.approx(16.0)  # w * s^2
        check_solution(s)

    def test_single_task_infeasible(self):
        g = TaskGraph(tasks=[("A", 4.0)])
        p = MinEnergyProblem(graph=g, deadline=2.0, model=ContinuousModel(s_max=1.0))
        with pytest.raises(InfeasibleProblemError):
            solve_single_task(p)

    def test_single_task_rejects_larger_graph(self, small_chain):
        p = _problem(small_chain, 2.0)
        with pytest.raises(InvalidGraphError):
            solve_single_task(p)

    def test_chain_uses_common_speed(self, small_chain):
        p = _problem(small_chain, 2.0)
        s = solve_chain(p)
        speeds = set(round(v, 12) for v in s.speeds().values())
        assert len(speeds) == 1
        assert s.makespan == pytest.approx(p.deadline)
        check_solution(s)

    def test_chain_energy_formula(self, small_chain):
        # E = W^3 / D^2 for a chain under the cubic law
        p = _problem(small_chain, 2.0)
        s = solve_chain(p)
        W = small_chain.total_work()
        assert s.energy == pytest.approx(W ** 3 / p.deadline ** 2)

    def test_chain_rejects_fork(self, small_fork):
        with pytest.raises(InvalidGraphError):
            solve_chain(_problem(small_fork, 2.0))

    def test_fork_formula_matches_theorem1(self):
        # Theorem 1 with explicit numbers
        w0, works, deadline = 2.0, [1.0, 2.0, 3.0], 10.0
        s0, leaf_speeds = fork_optimal_speeds(w0, works, deadline)
        norm = cube_root(sum(w ** 3 for w in works))
        assert s0 == pytest.approx((norm + w0) / deadline)
        for w, s in zip(works, leaf_speeds):
            assert s == pytest.approx(s0 * w / norm)

    def test_fork_saturated_branch(self):
        # force s0 above s_max: unconstrained s0 = (cbrt(36) + 2) / 5.2 > 1
        w0, works = 2.0, [1.0, 2.0, 3.0]
        s_max = 1.0
        deadline = 5.2  # min makespan = (2+3)/1 = 5
        s0, leaf_speeds = fork_optimal_speeds(w0, works, deadline, s_max=s_max)
        assert s0 == pytest.approx(s_max)
        remaining = deadline - w0 / s_max
        assert leaf_speeds == pytest.approx([w / remaining for w in works])

    def test_fork_saturated_branch_infeasible(self):
        with pytest.raises(InfeasibleProblemError):
            fork_optimal_speeds(2.0, [1.0, 2.0, 3.0], 4.9, s_max=1.0)

    def test_fork_source_alone_exceeds_deadline(self):
        with pytest.raises(InfeasibleProblemError):
            fork_optimal_speeds(10.0, [1.0], 5.0, s_max=1.0)

    def test_solve_fork_solution(self, small_fork):
        p = _problem(small_fork, 1.5)
        s = solve_fork(p)
        assert s.optimal
        check_solution(s)
        # leaves all finish exactly at the deadline in the unsaturated branch
        finishes = [s.schedule.finish[f"T{i}"] for i in range(1, 5)]
        assert all(f == pytest.approx(p.deadline) for f in finishes)

    def test_solve_join_matches_fork_energy(self):
        works = [1.0, 2.0, 3.0, 4.0]
        fork_graph = generators.fork(4, source_work=2.0, works=works)
        join_graph = generators.join(4, sink_work=2.0, works=works)
        pf = _problem(fork_graph, 1.5)
        pj = MinEnergyProblem(graph=join_graph, deadline=pf.deadline,
                              model=ContinuousModel(s_max=1.0))
        sf, sj = solve_fork(pf), solve_join(pj)
        assert sf.energy == pytest.approx(sj.energy)
        check_solution(sj)

    def test_solve_fork_rejects_chain(self, small_chain):
        with pytest.raises(InvalidGraphError):
            solve_fork(_problem(small_chain, 2.0))

    @given(st.integers(min_value=1, max_value=12),
           st.floats(min_value=1.05, max_value=5.0),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_fork_closed_form_beats_uniform_scaling(self, n, slack, seed):
        """The closed form is optimal, so it never loses to uniform scaling."""
        from repro.baselines.naive import solve_uniform_scaling

        g = generators.fork(n, seed=seed)
        p = _problem(g, slack)
        closed = solve_fork(p)
        uniform = solve_uniform_scaling(p)
        assert closed.energy <= uniform.energy * (1 + 1e-9)
        check_solution(closed)


class TestSeriesParallelAndTree:
    def test_equivalent_load_single_task(self):
        g = TaskGraph(tasks=[("A", 3.0)])
        assert equivalent_load(g) == pytest.approx(3.0)

    def test_equivalent_load_chain_is_sum(self):
        g = generators.chain(3, works=[1.0, 2.0, 3.0])
        assert equivalent_load(g) == pytest.approx(6.0)

    def test_equivalent_load_parallel_is_cubic_norm(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 2.0)])
        assert equivalent_load(g) == pytest.approx(cube_root(1.0 + 8.0))

    def test_equivalent_load_fork_matches_theorem1(self):
        g = generators.fork(3, source_work=2.0, works=[1.0, 2.0, 3.0])
        expected = 2.0 + cube_root(1.0 + 8.0 + 27.0)
        assert equivalent_load(g) == pytest.approx(expected)

    def test_sp_energy_formula(self, small_sp_graph):
        p = _problem(small_sp_graph, 2.0)
        s = solve_series_parallel(p)
        load = equivalent_load(small_sp_graph)
        assert s.energy == pytest.approx(load ** 3 / p.deadline ** 2)
        check_solution(s)

    def test_sp_matches_convex_solver(self, small_sp_graph):
        p = MinEnergyProblem(graph=small_sp_graph,
                             deadline=2.0 * longest_path_length(small_sp_graph),
                             model=ContinuousModel(s_max=100.0))
        sp = solve_series_parallel(p)
        convex = solve_general_convex(p)
        assert sp.energy == pytest.approx(convex.energy, rel=1e-5)

    def test_sp_speed_cap_violation_raises(self):
        g = generators.chain(3, works=[1.0, 1.0, 1.0])
        # the uncapped optimum runs the chain at speed 3 / 2.5 = 1.2 > s_max
        p = MinEnergyProblem(graph=g, deadline=2.5, model=ContinuousModel(s_max=1.1))
        with pytest.raises(SolverError):
            solve_series_parallel(p)
        # but the uncapped solve is allowed when requested explicitly
        uncapped = solve_series_parallel(p, enforce_speed_cap=False)
        assert uncapped.energy > 0

    def test_fork_on_fork_graph_equals_sp_solver(self, small_fork):
        p = _problem(small_fork, 1.5)
        assert solve_fork(p).energy == pytest.approx(solve_series_parallel(p).energy)

    def test_is_tree_recognition(self):
        assert is_tree(generators.random_tree(10, seed=0))
        assert is_tree(generators.random_tree(10, seed=0, direction="in"))
        assert is_tree(generators.chain(5, works=[1.0] * 5))
        assert not is_tree(generators.fork_join(3, seed=1))
        assert not is_tree(generators.diamond(2, 3, seed=2))
        assert not is_tree(TaskGraph(tasks=[("A", 1.0), ("B", 1.0)]))  # forest, not a tree

    def test_tree_equivalent_load_fork(self):
        g = generators.fork(3, source_work=2.0, works=[1.0, 2.0, 3.0])
        load = tree_equivalent_load(g, "T0")
        assert load == pytest.approx(equivalent_load(g))

    def test_tree_solver_matches_sp_solver(self):
        g = generators.random_tree(20, seed=3)
        p = _problem(g, 2.0)
        assert solve_tree(p).energy == pytest.approx(solve_series_parallel(p).energy)

    def test_in_tree_solver(self):
        g = generators.random_tree(15, seed=4, direction="in")
        p = _problem(g, 2.0)
        s = solve_tree(p)
        check_solution(s)
        assert s.energy == pytest.approx(solve_series_parallel(p).energy)

    def test_tree_solver_rejects_non_tree(self, small_layered_dag):
        with pytest.raises(InvalidGraphError):
            solve_tree(_problem(small_layered_dag, 2.0))

    def test_general_alpha_parallel_rule(self):
        g = TaskGraph(tasks=[("A", 1.0), ("B", 2.0)])
        p = MinEnergyProblem(graph=g, deadline=4.0, model=ContinuousModel(),
                             power=PowerLaw(alpha=2.0))
        s = solve_series_parallel(p)
        # alpha = 2: E = (w1^2 + w2^2) / D
        assert s.energy == pytest.approx((1.0 + 4.0) / 4.0)

    @given(st.integers(min_value=2, max_value=25),
           st.floats(min_value=1.2, max_value=4.0),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_sp_solution_always_feasible_and_tight(self, n, slack, seed):
        g = generators.random_series_parallel(n, seed=seed)
        p = _problem(g, slack)
        try:
            s = solve_series_parallel(p)
        except SolverError:
            return  # s_max violated: out of Theorem 2's scope
        check_solution(s)
        # optimal continuous schedules finish exactly at the deadline
        assert s.makespan == pytest.approx(p.deadline, rel=1e-9)


class TestConvexSolver:
    def test_matches_chain_closed_form(self, small_chain):
        p = _problem(small_chain, 2.0)
        assert solve_general_convex(p).energy == pytest.approx(solve_chain(p).energy, rel=1e-6)

    def test_matches_fork_closed_form_saturated(self):
        g = generators.fork(3, source_work=2.0, works=[1.0, 2.0, 3.0])
        p = MinEnergyProblem(graph=g, deadline=5.5, model=ContinuousModel(s_max=1.0))
        closed = solve_fork(p)
        convex = solve_general_convex(p)
        assert convex.energy == pytest.approx(closed.energy, rel=1e-5)

    def test_diamond_graph(self):
        g = generators.diamond(3, 3, seed=0)
        p = _problem(g, 1.8)
        s = solve_general_convex(p)
        check_solution(s)
        assert s.energy >= critical_path_lower_bound(p) - 1e-9

    def test_single_task_shortcut(self):
        g = TaskGraph(tasks=[("A", 2.0)])
        p = MinEnergyProblem(graph=g, deadline=4.0, model=ContinuousModel(s_max=1.0))
        s = solve_general_convex(p)
        assert s.speeds()["A"] == pytest.approx(0.5)

    def test_infeasible_detected(self, small_chain):
        p = MinEnergyProblem(graph=small_chain, deadline=1.0,
                             model=ContinuousModel(s_max=1.0))
        with pytest.raises(InfeasibleProblemError):
            solve_general_convex(p)

    @given(st.integers(min_value=2, max_value=16),
           st.floats(min_value=1.1, max_value=3.0),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_convex_between_bounds(self, n, slack, seed):
        g = generators.layered_dag(n, seed=seed)
        p = _problem(g, slack)
        s = solve_general_convex(p)
        check_solution(s)
        lower = max(load_lower_bound(p), critical_path_lower_bound(p))
        assert s.energy >= lower * (1 - 1e-6)
        # never worse than uniform scaling
        from repro.baselines.naive import solve_uniform_scaling

        assert s.energy <= solve_uniform_scaling(p).energy * (1 + 1e-6)


class TestDispatcherAndBounds:
    def test_dispatcher_uses_closed_form_for_fork(self, small_fork):
        s = solve_continuous(_problem(small_fork, 1.5))
        assert "fork" in s.solver

    def test_dispatcher_uses_sp_for_sp_graph(self, small_sp_graph):
        s = solve_continuous(_problem(small_sp_graph, 2.0))
        assert s.solver in ("continuous-series-parallel", "continuous-tree")

    def test_dispatcher_uses_convex_for_diamond(self):
        g = generators.diamond(3, 3, seed=1)
        s = solve_continuous(_problem(g, 2.0))
        assert s.solver == "continuous-convex"

    def test_dispatcher_falls_back_when_cap_violated(self):
        # SP algorithm would exceed s_max; dispatcher must fall back to convex
        g = generators.random_series_parallel(8, seed=11)
        min_makespan = longest_path_length(g)
        p = MinEnergyProblem(graph=g, deadline=1.05 * min_makespan,
                             model=ContinuousModel(s_max=1.0))
        s = solve_continuous(p)
        check_solution(s)

    def test_dispatcher_force_method(self, small_fork):
        p = _problem(small_fork, 1.5)
        assert solve_continuous(p, force_method="convex").solver == "continuous-convex"
        assert "closed-form" in solve_continuous(p, force_method="closed-form").solver \
            or "fork" in solve_continuous(p, force_method="closed-form").solver
        with pytest.raises(InvalidModelError):
            solve_continuous(p, force_method="quantum")

    def test_dispatcher_rejects_wrong_model(self, small_fork):
        from repro.core.models import DiscreteModel

        p = MinEnergyProblem(graph=small_fork, deadline=20.0,
                             model=DiscreteModel(modes=(1.0,)))
        with pytest.raises(InvalidModelError):
            solve_continuous(p)

    def test_load_bound_below_cp_bound_below_optimum(self, small_layered_dag):
        p = _problem(small_layered_dag, 1.5)
        opt = solve_continuous(p).energy
        assert load_lower_bound(p) <= critical_path_lower_bound(p) + 1e-9
        assert critical_path_lower_bound(p) <= opt * (1 + 1e-6)

    def test_continuous_lower_bound_matches_continuous_optimum(self, small_sp_graph):
        p = _problem(small_sp_graph, 2.0)
        assert continuous_lower_bound(p) == pytest.approx(solve_continuous(p).energy)

    def test_continuous_lower_bound_for_discrete_model(self, small_sp_graph):
        from repro.core.models import DiscreteModel

        p = MinEnergyProblem(graph=small_sp_graph, deadline=40.0,
                             model=DiscreteModel(modes=(0.5, 1.0)))
        lb_capped = continuous_lower_bound(p)
        lb_uncapped = continuous_lower_bound(p, use_model_speed_cap=False)
        assert lb_uncapped <= lb_capped + 1e-9
