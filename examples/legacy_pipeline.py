#!/usr/bin/env python3
"""Scenario: a pre-allocated legacy streaming pipeline.

The paper motivates fixed mappings with "legacy applications" and tasks
"pre-allocated for security reasons".  This example models such a system: a
three-stage streaming pipeline (decode -> transform -> encode) whose stages
are pinned to specific processors by the legacy deployment, processing a
batch of frames under a latency bound.

The mapping is therefore *not* produced by a scheduler: stage 1 tasks live
on processor 0, stage 2 tasks are split between processors 1 and 2 (the
transform is the heavy stage), and stage 3 tasks live on processor 3.  The
only freedom left — exactly the paper's setting — is the speed of each task.

The script compares, for several latency bounds, how much of the
all-at-maximum-speed energy each model reclaims, and prints the per-stage
speed profile chosen by the continuous optimum (slow stages are where the
reclaimable energy lives).

Run with::

    python examples/legacy_pipeline.py
"""

from __future__ import annotations

from repro import (
    ContinuousModel,
    DiscreteModel,
    ExecutionGraph,
    MinEnergyProblem,
    TaskGraph,
    VddHoppingModel,
    check_solution,
    solve,
    solve_no_reclaim,
)
from repro.graphs.analysis import longest_path_length
from repro.utils.rng import make_rng
from repro.utils.tables import Table

N_FRAMES = 8
MODES = (0.5, 0.7, 0.85, 1.0)


def build_pipeline(n_frames: int, seed: int = 7) -> tuple[TaskGraph, ExecutionGraph]:
    """A 3-stage pipeline over ``n_frames`` frames with a pinned mapping."""
    rng = make_rng(seed)
    graph = TaskGraph(name="legacy-pipeline")
    for frame in range(n_frames):
        decode = f"decode{frame}"
        transform = f"transform{frame}"
        encode = f"encode{frame}"
        graph.add_task(decode, float(rng.uniform(1.0, 2.0)))
        graph.add_task(transform, float(rng.uniform(4.0, 7.0)))   # heavy stage
        graph.add_task(encode, float(rng.uniform(1.5, 2.5)))
        graph.add_edge(decode, transform)
        graph.add_edge(transform, encode)
        if frame > 0:
            # frames are decoded in order (the input stream is sequential)
            graph.add_edge(f"decode{frame - 1}", decode)

    # the legacy deployment pins stages to processors
    processor_lists = {
        0: [f"decode{f}" for f in range(n_frames)],
        1: [f"transform{f}" for f in range(0, n_frames, 2)],
        2: [f"transform{f}" for f in range(1, n_frames, 2)],
        3: [f"encode{f}" for f in range(n_frames)],
    }
    execution = ExecutionGraph(task_graph=graph, processor_lists=processor_lists)
    return graph, execution


def main() -> None:
    graph, execution = build_pipeline(N_FRAMES)
    combined = execution.combined_graph()
    min_makespan = longest_path_length(combined)  # at s_max = 1
    print(f"legacy pipeline: {graph.n_tasks} tasks on {execution.n_processors} "
          f"pinned processors, minimum latency {min_makespan:.2f}\n")

    table = Table(
        columns=["latency bound", "no-reclaim", "continuous", "vdd-hopping",
                 "discrete", "continuous saving"],
        title="energy vs latency bound (legacy mapping kept fixed)",
    )
    for slack in (1.1, 1.3, 1.6, 2.0):
        deadline = slack * min_makespan
        baseline = solve_no_reclaim(MinEnergyProblem(
            graph=combined, deadline=deadline, model=DiscreteModel(modes=MODES)))
        energies = {}
        for name, model in (("continuous", ContinuousModel(s_max=1.0)),
                            ("vdd", VddHoppingModel(modes=MODES)),
                            ("discrete", DiscreteModel(modes=MODES))):
            solution = solve(MinEnergyProblem(graph=combined, deadline=deadline,
                                              model=model))
            check_solution(solution)
            energies[name] = solution.energy
        table.add_row(deadline, baseline.energy, energies["continuous"],
                      energies["vdd"], energies["discrete"],
                      1.0 - energies["continuous"] / baseline.energy)
    print(table.to_ascii())

    # per-stage speed profile of the continuous optimum at 1.6x slack
    deadline = 1.6 * min_makespan
    solution = solve(MinEnergyProblem(graph=combined, deadline=deadline,
                                      model=ContinuousModel(s_max=1.0)))
    speeds = solution.speeds()
    stage_table = Table(columns=["stage", "mean speed", "min speed", "max speed"],
                        title="continuous speed profile per pipeline stage (1.6x slack)")
    for stage in ("decode", "transform", "encode"):
        values = [s for name, s in speeds.items() if name.startswith(stage)]
        stage_table.add_row(stage, sum(values) / len(values), min(values), max(values))
    print(stage_table.to_ascii())
    print("note how the lightly-loaded decode/encode stages are slowed down the most —")
    print("that slack is exactly the energy the paper's algorithms reclaim.")


if __name__ == "__main__":
    main()
