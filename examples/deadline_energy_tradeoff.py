#!/usr/bin/env python3
"""Scenario: trading deadline slack for energy on a mapped HPC workload.

An operator running a mapped scientific workflow wants a table they can put
in front of a user: "if you accept finishing X% later, the platform spends
Y% less energy".  This example sweeps the deadline from the tightest
feasible value to 3x that value and reports, for the Continuous optimum and
for a realistic 5-mode DVFS ladder (Discrete heuristic and Vdd-Hopping LP),
the energy relative to running everything at full speed.

It also cross-checks every solution with the discrete-event simulator and
reports the per-processor utilisation of the most relaxed schedule — slack
shows up as idle time on the lightly loaded processors.

Run with::

    python examples/deadline_energy_tradeoff.py
"""

from __future__ import annotations

from repro import (
    ContinuousModel,
    DiscreteModel,
    MinEnergyProblem,
    VddHoppingModel,
    check_solution,
    generators,
    list_schedule,
    simulate_solution,
    solve,
    solve_no_reclaim,
)
from repro.graphs.analysis import longest_path_length
from repro.simulation import processor_utilisation
from repro.utils.tables import Table

MODES = (0.3, 0.5, 0.7, 0.85, 1.0)
SLACKS = (1.1, 1.25, 1.5, 2.0, 2.5, 3.0)


def main() -> None:
    # a fork-join-heavy workflow (typical of bulk-synchronous HPC codes)
    graph = generators.random_series_parallel(28, seed=5, series_probability=0.45)
    execution = list_schedule(graph, 5)
    combined = execution.combined_graph()
    min_makespan = longest_path_length(combined)
    print(f"workflow: {combined.n_tasks} tasks on 5 processors, "
          f"fastest completion {min_makespan:.1f}\n")

    reference = solve_no_reclaim(MinEnergyProblem(
        graph=combined, deadline=3.0 * min_makespan, model=DiscreteModel(modes=MODES)))

    table = Table(
        columns=["slowdown accepted", "continuous energy %", "vdd energy %",
                 "discrete energy %"],
        title="energy (as % of the full-speed energy) vs accepted slowdown",
    )
    last_solution = None
    for slack in SLACKS:
        deadline = slack * min_makespan
        row = {"slowdown accepted": f"{(slack - 1) * 100:.0f}%"}
        for label, model in (("continuous energy %", ContinuousModel(s_max=1.0)),
                             ("vdd energy %", VddHoppingModel(modes=MODES)),
                             ("discrete energy %", DiscreteModel(modes=MODES))):
            solution = solve(MinEnergyProblem(graph=combined, deadline=deadline,
                                              model=model))
            check_solution(solution)
            trace = simulate_solution(solution, execution=execution)
            assert abs(trace.total_energy - solution.energy) < 1e-6 * solution.energy
            row[label] = 100.0 * solution.energy / reference.energy
            if label == "continuous energy %":
                last_solution = solution
        table.add_row(**row)
    print(table.to_ascii())

    assert last_solution is not None
    trace = simulate_solution(last_solution, execution=execution)
    util = processor_utilisation(trace)
    print("per-processor utilisation of the most relaxed continuous schedule:")
    for proc, value in sorted(util.items()):
        print(f"  processor {proc}: {value:6.1%}")
    print("\nreading: a 50% slowdown already cuts the energy to roughly a quarter of")
    print("the full-speed cost (the cubic law makes slack extremely valuable), and the")
    print("5-mode ladder captures most of that gain.")


if __name__ == "__main__":
    main()
