#!/usr/bin/env python3
"""Quickstart: reclaim the energy of a mapped task graph.

This is the 5-minute tour of the library:

1. generate an application task graph;
2. map it onto processors with list scheduling (the mapping is *given* from
   the paper's point of view — speed selection never changes it);
3. solve ``MinEnergy(G, D)`` under each of the paper's four energy models;
4. compare the energies against the no-reclamation baseline and replay the
   continuous solution through the discrete-event simulator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ContinuousModel,
    DiscreteModel,
    IncrementalModel,
    MinEnergyProblem,
    VddHoppingModel,
    check_solution,
    generators,
    list_schedule,
    simulate_solution,
    solve,
    solve_no_reclaim,
)
from repro.graphs.analysis import longest_path_length
from repro.simulation import trace_summary
from repro.utils.tables import Table


def main() -> None:
    # 1. an application: a random layered DAG of 30 tasks
    graph = generators.layered_dag(30, seed=2024)
    print(f"application graph: {graph.n_tasks} tasks, {graph.n_edges} edges, "
          f"total work {graph.total_work():.1f}")

    # 2. a fixed mapping onto 4 identical processors
    execution = list_schedule(graph, 4)
    combined = execution.combined_graph()
    print(f"mapping: {execution.n_processors} processors, "
          f"{len(execution.processor_edges())} ordering edges added")

    # 3. the MinEnergy(G, D) instance: 60% slack over the fastest execution
    s_max = 1.0
    min_makespan = longest_path_length(combined, weight=lambda n: combined.work(n) / s_max)
    deadline = 1.6 * min_makespan
    print(f"deadline D = {deadline:.2f} (minimum makespan {min_makespan:.2f})\n")

    modes = (0.4, 0.6, 0.8, 1.0)
    models = {
        "continuous": ContinuousModel(s_max=s_max),
        "vdd-hopping": VddHoppingModel(modes=modes),
        "discrete": DiscreteModel(modes=modes),
        "incremental": IncrementalModel.from_range(0.4, 1.0, 0.2),
    }

    baseline = solve_no_reclaim(
        MinEnergyProblem(graph=combined, deadline=deadline, model=models["discrete"])
    )

    table = Table(columns=["model", "solver", "energy", "saving vs no-reclaim"],
                  title="MinEnergy(G, D) under the four energy models")
    solutions = {}
    for name, model in models.items():
        problem = MinEnergyProblem(graph=combined, deadline=deadline, model=model)
        solution = solve(problem)
        check_solution(solution)          # validate feasibility + admissibility
        solutions[name] = solution
        table.add_row(name, solution.solver, solution.energy,
                      1.0 - solution.energy / baseline.energy)
    print(table.to_ascii())

    # 4. replay the continuous solution through the simulator
    trace = simulate_solution(solutions["continuous"], execution=execution)
    summary = trace_summary(trace)
    print("simulated continuous schedule:")
    for key, value in summary.items():
        print(f"  {key:>20}: {value:.4g}")


if __name__ == "__main__":
    main()
