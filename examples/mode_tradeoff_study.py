#!/usr/bin/env python3
"""Scenario: how many DVFS modes does a platform need?

A hardware designer choosing a voltage/frequency ladder wants to know how
many operating points are worth supporting: each extra mode costs silicon
and validation effort, but too few modes waste energy because tasks must be
rounded up to the next available speed.

This study sweeps the number of modes and reports, for a fixed workload and
deadline, the energy of the Discrete heuristic, the Vdd-Hopping LP and the
Incremental (regular grid) approximation relative to the Continuous lower
bound — i.e. the "price of discreteness" the paper's models quantify — plus
the Theorem 5 a-priori guarantee for the Incremental grid.

Run with::

    python examples/mode_tradeoff_study.py
"""

from __future__ import annotations

from repro import MinEnergyProblem, check_solution, generators, list_schedule
from repro.continuous.bounds import continuous_lower_bound
from repro.core.models import ContinuousModel, DiscreteModel, IncrementalModel, VddHoppingModel
from repro.discrete import solve_discrete_best_heuristic
from repro.graphs.analysis import longest_path_length
from repro.incremental import build_incremental_model, solve_incremental_approx
from repro.utils.tables import Table, ascii_series_plot
from repro.vdd import solve_vdd_lp

S_MAX = 1.0
S_MIN = 0.2
SLACK = 1.5
MODE_COUNTS = (2, 3, 4, 6, 8, 12, 16)


def main() -> None:
    graph = generators.layered_dag(36, seed=11)
    execution = list_schedule(graph, 6)
    combined = execution.combined_graph()
    deadline = SLACK * longest_path_length(combined)
    base = MinEnergyProblem(graph=combined, deadline=deadline,
                            model=ContinuousModel(s_max=S_MAX))
    lower_bound = continuous_lower_bound(base)
    print(f"workload: {combined.n_tasks} tasks on 6 processors, deadline {deadline:.1f}")
    print(f"continuous lower bound: {lower_bound:.2f}\n")

    table = Table(
        columns=["n_modes", "discrete/LB", "vdd/LB", "incremental/LB",
                 "theorem5 guarantee"],
        title="price of discreteness vs number of modes",
    )
    series: dict[str, list[float]] = {"discrete": [], "vdd": [], "incremental": []}
    for m in MODE_COUNTS:
        grid = build_incremental_model(S_MIN, S_MAX, n_modes=m)
        modes = grid.modes  # use the same (regular) ladder for every model
        discrete = solve_discrete_best_heuristic(
            base.with_model(DiscreteModel(modes=modes)))
        vdd = solve_vdd_lp(base.with_model(VddHoppingModel(modes=modes)))
        incremental = solve_incremental_approx(base.with_model(grid))
        for s in (discrete, vdd, incremental):
            check_solution(s)
        table.add_row(m, discrete.energy / lower_bound, vdd.energy / lower_bound,
                      incremental.energy / lower_bound,
                      grid.approximation_ratio_vs_continuous())
        series["discrete"].append(discrete.energy / lower_bound)
        series["vdd"].append(vdd.energy / lower_bound)
        series["incremental"].append(incremental.energy / lower_bound)

    print(table.to_ascii())
    print(ascii_series_plot(list(MODE_COUNTS), series,
                            title="energy ratio over the continuous bound (lower is better)"))
    print("reading: beyond roughly 6-8 modes the extra hardware buys almost nothing —")
    print("Vdd-Hopping gets there with fewer modes because it can mix adjacent ones.")


if __name__ == "__main__":
    main()
